//! Surrogate CE-model acquisition (paper Section 4): speculate the black
//! box's model type from behavioral similarity, then train a white-box
//! surrogate by imitation.
//!
//! Every black-box interaction goes through a
//! [`ResilientOracle`](crate::resilience::ResilientOracle), so transient
//! oracle failures are retried (and, past the circuit-breaker threshold,
//! degraded) instead of aborting the acquisition; the imitation loop itself
//! checkpoints parameters + optimizer + RNG state and rolls back with a
//! halved learning rate when optimization diverges, mirroring
//! `CeModel::train`.

use crate::knowledge::AttackerKnowledge;
use crate::resilience::{CampaignError, ProbeError, ResilientOracle, RetryPolicy};
use crate::victim::BlackBox;
use pace_ce::{
    q_error_between, q_error_loss, CeConfig, CeModel, CeModelType, EncodedWorkload, TrainError,
};
use pace_tensor::fault;
use pace_tensor::optim::{clip_global_norm, sanitize, Adam, AdamState, Optimizer};
use pace_tensor::{Graph, Matrix};
use pace_workload::{
    generate_queries_schema_only, q_error, schema_only_query_for_pattern, Query, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// Parameters of model-type speculation (paper Section 4.1).
#[derive(Clone, Debug)]
pub struct SpeculationConfig {
    /// Queries used to train each candidate model.
    pub candidate_train_queries: usize,
    /// Probe queries per (column-count × range-size) group.
    pub probes_per_group: usize,
    /// Column counts probed (the diverse property the paper varies).
    pub column_counts: Vec<usize>,
    /// Normalized range sizes probed (small/medium/large).
    pub range_sizes: Vec<f64>,
    /// Candidate training configuration.
    pub ce_config: CeConfig,
    /// Retry/breaker policy for the oracle probes.
    pub retry: RetryPolicy,
    /// Seed for probe/candidate randomness.
    pub seed: u64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            candidate_train_queries: 600,
            probes_per_group: 20,
            column_counts: vec![1, 2, 3],
            range_sizes: vec![0.05, 0.3, 0.8],
            ce_config: CeConfig::default(),
            retry: RetryPolicy::default(),
            seed: 0x5bec,
        }
    }
}

impl SpeculationConfig {
    /// A faster configuration for tests.
    pub fn quick() -> Self {
        Self {
            candidate_train_queries: 200,
            probes_per_group: 14,
            ce_config: CeConfig::quick(),
            ..Self::default()
        }
    }
}

/// Outcome of model-type speculation.
#[derive(Clone, Debug)]
pub struct SpeculationResult {
    /// The speculated type (highest behavior similarity).
    pub speculated: CeModelType,
    /// Cosine similarity of each candidate's behavior vector to the black
    /// box's, in [`CeModelType::all`] order.
    pub similarities: Vec<(CeModelType, f64)>,
}

/// Builds probe queries grouped by column count and predicate range size.
/// Returns `(group sizes are uniform)` the flat probe list, group by group.
fn build_probes(
    k: &AttackerKnowledge,
    cfg: &SpeculationConfig,
    rng: &mut StdRng,
) -> Vec<Vec<Query>> {
    let mut groups = Vec::new();
    for &cols in &cfg.column_counts {
        // Couple probe join size to the column count where the schema allows
        // it: this is what makes the architecture-specific signals fire
        // (sequence models' latency scales with the pattern's attributes,
        // set models' accuracy degrades differently with column count).
        let sized: Vec<&Vec<usize>> = k
            .patterns
            .iter()
            .filter(|p| {
                let attrs = k
                    .encoder
                    .attributes()
                    .iter()
                    .filter(|(t, _)| p.contains(t))
                    .count();
                p.len() == cols.min(k.encoder.num_tables()) && attrs >= cols
            })
            .collect();
        let patterns: Vec<Vec<usize>> = if sized.is_empty() {
            k.patterns
                .iter()
                .filter(|p| {
                    k.encoder
                        .attributes()
                        .iter()
                        .filter(|(t, _)| p.contains(t))
                        .count()
                        >= cols
                })
                .cloned()
                .collect()
        } else {
            sized.into_iter().cloned().collect()
        };
        let patterns = if patterns.is_empty() {
            k.patterns.clone()
        } else {
            patterns
        };
        for &range in &cfg.range_sizes {
            let spec = WorkloadSpec {
                max_predicates: cols,
                width_range: (range * 0.9, range),
                ..k.spec.clone()
            };
            let mut group = Vec::with_capacity(cfg.probes_per_group);
            for _ in 0..cfg.probes_per_group {
                let pat = &patterns[rng.random_range(0..patterns.len())];
                let mut q = schema_only_query_for_pattern(&k.encoder, &spec, rng, pat);
                // Force exactly `cols` predicates where possible.
                while q.predicates.len() > cols {
                    q.predicates.pop();
                }
                group.push(q);
            }
            groups.push(group);
        }
    }
    groups
}

/// A fallible `(estimate, seconds)` probe — the shape of
/// [`crate::BlackBox::explain_timed`] and of candidate-model timers.
type TimedEstimator<'a> = dyn FnMut(&Query) -> Result<(f64, f64), ProbeError> + 'a;

/// Behavior vector of an estimator over probe groups. Per group, three
/// features: the mean *signed* log error (architectural bias direction), the
/// mean log Q-error (error magnitude), and the log of the minimum-of-3
/// per-query inference latency (minimum filters scheduler noise; latency is
/// the paper's second speculation signal).
fn behavior_vector(
    estimate: &mut TimedEstimator<'_>,
    truths: &[Vec<u64>],
    groups: &[Vec<Query>],
) -> Result<Vec<f64>, ProbeError> {
    let mut v = Vec::with_capacity(groups.len() * 3);
    // Warm-up pass: the first estimates after model construction pay
    // allocator/cache costs that would otherwise masquerade as architecture
    // latency (the black box is always probed first, so without this every
    // black box looks like the slowest candidate).
    for group in groups {
        for q in group {
            let _ = estimate(q)?;
        }
    }
    for (group, truth) in groups.iter().zip(truths) {
        let mut bias = 0.0;
        let mut qe = 0.0;
        let mut lat = 0.0;
        for (q, &t) in group.iter().zip(truth) {
            let mut best_l = f64::INFINITY;
            let mut est = 1.0;
            for _ in 0..3 {
                let (e, l) = estimate(q)?;
                est = e;
                best_l = best_l.min(l);
            }
            bias += (est.max(1.0) / t as f64).ln();
            qe += q_error(est, t as f64).ln();
            lat += best_l;
        }
        v.push(bias / group.len() as f64);
        v.push(qe / group.len() as f64);
        v.push((lat / group.len() as f64).max(1e-9).ln());
    }
    Ok(v)
}

/// Similarity between two z-scored behavior vectors: negative Euclidean
/// distance mapped into `(0, 1]`. (A plain cosine over un-centered vectors
/// degenerates: every dimension is positive, so the candidate with *average*
/// behavior wins for every black box. Centering per dimension makes the
/// match about behavioral *deviations* — which candidate errs and slows down
/// in the same probe groups — which is the architecture fingerprint.)
fn similarity(a: &[f64], b: &[f64]) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 / (1.0 + d2.sqrt())
}

/// Normalizes behavior vectors for matching, in two stages:
///
/// 1. *Per-vector block centering of the accuracy features* (bias and
///    Q-error; dims interleaved per group): removes vector-global offsets —
///    the black box trained on a different workload distribution than the
///    candidates — keeping the *pattern across probe groups*. Latency is
///    left absolute: both sides share the inference code path, so its
///    magnitude is itself an architecture fingerprint.
/// 2. *Cross-vector z-scoring* per dimension, so all features contribute
///    comparably to the distance.
fn normalize_dims(vectors: &mut [Vec<f64>]) {
    if vectors.is_empty() {
        return;
    }
    let dim = vectors[0].len();
    const FEATURES: usize = 3;
    let groups = dim / FEATURES;
    // Center the two accuracy features only: they carry workload-distribution
    // offsets. Latency stays absolute — black box and candidates share the
    // same inference code path, so its magnitude is the architecture's own.
    for v in vectors.iter_mut() {
        for f in 0..2 {
            let mean: f64 = (0..groups).map(|g| v[g * FEATURES + f]).sum::<f64>() / groups as f64;
            for g in 0..groups {
                v[g * FEATURES + f] -= mean;
            }
        }
    }
    let n = vectors.len() as f64;
    // Feature weights applied *after* z-scoring (weights applied before
    // would be normalized away): latency is a near-deterministic
    // architecture fingerprint measured over a shared code path, while the
    // two accuracy residual features are noisy, so latency dominates.
    const WEIGHTS: [f64; FEATURES] = [0.4, 0.4, 2.5];
    for d in 0..dim {
        let mean = vectors.iter().map(|v| v[d]).sum::<f64>() / n;
        let var = vectors.iter().map(|v| (v[d] - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-12);
        for v in vectors.iter_mut() {
            v[d] = (v[d] - mean) / std * WEIGHTS[d % FEATURES];
        }
    }
}

/// Speculates the black-box model's type (paper Eq. 5): train candidates of
/// every type on attacker-crafted queries, probe all of them plus the black
/// box across diverse query groups, and pick the candidate whose
/// (bias, Q-error, latency) behavior vector is most similar. (The paper uses
/// a raw cosine; see the internal `similarity` helper for why a centered distance is
/// the robust equivalent here.)
///
/// All probes run through the configured [`RetryPolicy`]; the error is the
/// oracle staying down past every retry, or a candidate's training staying
/// divergent past every rollback.
pub fn speculate_model_type(
    bb: &dyn BlackBox,
    k: &AttackerKnowledge,
    cfg: &SpeculationConfig,
) -> Result<SpeculationResult, CampaignError> {
    let oracle = ResilientOracle::new(bb, cfg.retry.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Candidate training data, labeled through the COUNT(*) oracle.
    let train_queries = generate_queries_schema_only(
        &k.encoder,
        &k.patterns,
        &k.spec,
        &mut rng,
        cfg.candidate_train_queries,
    );
    let mut labeled: Vec<(Query, u64)> = Vec::with_capacity(train_queries.len());
    for q in train_queries {
        let c = oracle.count(&q)?.max(1);
        labeled.push((q, c));
    }
    let enc: Vec<Vec<f32>> = labeled.iter().map(|(q, _)| k.encoder.encode(q)).collect();
    let cards: Vec<u64> = labeled.iter().map(|(_, c)| *c).collect();
    let data = EncodedWorkload::from_parts(enc, &cards);

    let probes = build_probes(k, cfg, &mut rng);
    let mut truths: Vec<Vec<u64>> = Vec::with_capacity(probes.len());
    for g in &probes {
        let mut t = Vec::with_capacity(g.len());
        for q in g {
            t.push(oracle.count(q)?.max(1));
        }
        truths.push(t);
    }

    // Black-box behavior vector (EXPLAIN + latency). The latency timer wraps
    // the oracle's whole retry loop, so injected slowness shows up here.
    let mut bb_est = |q: &Query| oracle.explain_timed(q);
    let bb_vec = behavior_vector(&mut bb_est, &truths, &probes)?;

    let mut vectors = vec![bb_vec];
    let mut types = Vec::new();
    for ty in CeModelType::all() {
        // Average two independently seeded candidates per type: behavioral
        // residuals of a single candidate carry initialization noise that
        // can drown the architecture fingerprint.
        let mut avg: Vec<f64> = Vec::new();
        const CANDIDATE_SEEDS: u64 = 2;
        for c in 0..CANDIDATE_SEEDS {
            let mut candidate = CeModel::with_encoder(
                ty,
                k.encoder.clone(),
                k.ln_max,
                cfg.ce_config,
                cfg.seed ^ (ty as u64 + 1) ^ (c * 0x9e37),
            );
            candidate.train(&data, &mut rng)?;
            let mut est = |q: &Query| -> Result<(f64, f64), ProbeError> {
                let t0 = Instant::now();
                let e = candidate.estimate_query(q);
                Ok((e, t0.elapsed().as_secs_f64()))
            };
            let v = behavior_vector(&mut est, &truths, &probes)?;
            if avg.is_empty() {
                avg = v;
            } else {
                for (a, x) in avg.iter_mut().zip(v) {
                    *a += x;
                }
            }
        }
        for a in &mut avg {
            *a /= CANDIDATE_SEEDS as f64;
        }
        vectors.push(avg);
        types.push(ty);
    }
    normalize_dims(&mut vectors);
    let bb_vec = vectors[0].clone();
    let similarities: Vec<(CeModelType, f64)> = types
        .iter()
        .zip(&vectors[1..])
        .map(|(&ty, v)| (ty, similarity(&bb_vec, v)))
        .collect();
    let speculated = similarities
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(ty, _)| ty)
        .unwrap_or(CeModelType::Fcn);
    Ok(SpeculationResult {
        speculated,
        similarities,
    })
}

/// How the surrogate is supervised (paper Section 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImitationStrategy {
    /// Eq. 6: imitate only the black box's estimates.
    Direct,
    /// Eq. 7: imitate the black box *and* fit the true cardinalities.
    Combined,
}

/// Parameters of surrogate training.
#[derive(Clone, Debug)]
pub struct SurrogateConfig {
    /// Number of imitation queries.
    pub train_queries: usize,
    /// Supervision strategy.
    pub strategy: ImitationStrategy,
    /// Epochs of imitation training.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Model hyperparameters of the surrogate (the attacker's default set;
    /// may differ from the hidden black-box hyperparameters). Its
    /// `checkpoint_every` / `guard_band` / `max_rollbacks` fields also govern
    /// the imitation loop's own rollback recovery.
    pub ce_config: CeConfig,
    /// Retry/breaker policy for the oracle probes that label the data.
    pub retry: RetryPolicy,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        Self {
            train_queries: 800,
            strategy: ImitationStrategy::Combined,
            epochs: 40,
            batch_size: 128,
            lr: 1e-3,
            ce_config: CeConfig::default(),
            retry: RetryPolicy::default(),
            seed: 0x5a6e,
        }
    }
}

impl SurrogateConfig {
    /// A faster configuration for tests.
    pub fn quick() -> Self {
        Self {
            train_queries: 600,
            epochs: 40,
            ce_config: CeConfig::quick(),
            ..Self::default()
        }
    }
}

/// A rollback point of the imitation loop: everything needed to resume the
/// optimization stream exactly (params + Adam moments + RNG state).
struct ImitationCheckpoint {
    epoch: usize,
    params: Vec<Matrix>,
    adam: AdamState,
    rng: [u64; 4],
}

/// Trains a white-box surrogate of the speculated type against the black
/// box's observable behavior (paper Eq. 6 / Eq. 7).
///
/// Labeling probes retry under the configured policy; the imitation loop
/// checkpoints (params, Adam state, RNG) every
/// `ce_config.checkpoint_every` steps at epoch boundaries and recovers from
/// divergence — non-finite loss or parameters — by rolling back with a
/// halved learning rate, up to `ce_config.max_rollbacks` times.
pub fn train_surrogate(
    bb: &dyn BlackBox,
    k: &AttackerKnowledge,
    ty: CeModelType,
    cfg: &SurrogateConfig,
) -> Result<CeModel, CampaignError> {
    let _span = pace_tensor::trace::span("surrogate::train");
    let oracle = ResilientOracle::new(bb, cfg.retry.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let queries = generate_queries_schema_only(
        &k.encoder,
        &k.patterns,
        &k.spec,
        &mut rng,
        cfg.train_queries,
    );
    // Supervision: black-box estimates (normalized log) + true cardinalities.
    let enc: Vec<Vec<f32>> = queries.iter().map(|q| k.encoder.encode(q)).collect();
    let mut bb_norm: Vec<f32> = Vec::with_capacity(queries.len());
    let mut ln_true: Vec<f32> = Vec::with_capacity(queries.len());
    {
        let _probe_span = pace_tensor::trace::span("surrogate::probe-oracle");
        for q in &queries {
            bb_norm.push(((oracle.explain(q)?.max(1.0).ln() as f32) / k.ln_max).clamp(0.0, 1.0));
            ln_true.push((oracle.count(q)?.max(1) as f32).ln());
        }
    }

    let mut surrogate =
        CeModel::with_encoder(ty, k.encoder.clone(), k.ln_max, cfg.ce_config, cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut idx: Vec<usize> = (0..queries.len()).collect();
    let recovery = cfg.ce_config;
    let mut checkpoint = ImitationCheckpoint {
        epoch: 0,
        params: surrogate.params().snapshot(),
        adam: adam.export_state(),
        rng: rng.state(),
    };
    let mut steps_since_ckpt = 0usize;
    let mut rollbacks = 0u32;
    let mut epoch = 0usize;
    while epoch < cfg.epochs {
        if steps_since_ckpt >= recovery.checkpoint_every && surrogate.params_finite() {
            checkpoint = ImitationCheckpoint {
                epoch,
                params: surrogate.params().snapshot(),
                adam: adam.export_state(),
                rng: rng.state(),
            };
            steps_since_ckpt = 0;
        }
        use rand::seq::SliceRandom;
        idx.shuffle(&mut rng);
        let mut diverged = false;
        for chunk in idx.chunks(cfg.batch_size) {
            let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| enc[i].clone()).collect();
            let bb_batch: Vec<f32> = chunk.iter().map(|&i| bb_norm[i]).collect();
            let truth_batch: Vec<f32> = chunk.iter().map(|&i| ln_true[i]).collect();
            let mut g = Graph::new();
            let bind = surrogate.params().bind(&mut g);
            let x = g.leaf(pace_ce::rows_to_matrix(&rows));
            let out = surrogate.forward(&mut g, &bind, x);
            let bb_leaf = g.leaf(Matrix::from_vec(bb_batch.len(), 1, bb_batch));
            let imitate = q_error_between(&mut g, out, bb_leaf, k.ln_max);
            let loss = match cfg.strategy {
                ImitationStrategy::Direct => imitate,
                ImitationStrategy::Combined => {
                    let ground = q_error_loss(&mut g, out, &truth_batch, k.ln_max);
                    g.add(imitate, ground)
                }
            };
            pace_tensor::analysis::audit_if_enabled(&g, loss, bind.vars(), "surrogate::imitate");
            let grad_vars = g.grad(loss, bind.vars());
            let mut opt_outputs = vec![loss];
            opt_outputs.extend(&grad_vars);
            pace_tensor::opt::optimize_if_enabled(
                &g,
                &opt_outputs,
                bind.vars(),
                "surrogate::imitate",
            );
            let loss_value = g.value(loss).as_scalar();
            let mut grads: Vec<Matrix> = grad_vars.iter().map(|&v| g.value(v).clone()).collect();
            sanitize(&mut grads);
            clip_global_norm(&mut grads, surrogate.config().clip_norm);
            // Fault hook after sanitize/clip, so an injected NaN reaches the
            // optimizer exactly as a genuinely broken gradient would.
            fault::poison_grads("surrogate-imitate", &mut grads);
            adam.step(surrogate.params_mut(), &grads);
            steps_since_ckpt += 1;
            // The capped Q-error loss drops NaN through IEEE min/max, so
            // parameter finiteness is the authoritative divergence signal.
            if !loss_value.is_finite()
                || loss_value > recovery.guard_band
                || !surrogate.params_finite()
            {
                diverged = true;
                break;
            }
        }
        if diverged {
            if rollbacks >= recovery.max_rollbacks {
                return Err(CampaignError::Train(TrainError::Diverged { rollbacks }));
            }
            rollbacks += 1;
            pace_tensor::trace::CHECKPOINT_ROLLBACKS.add(1);
            surrogate.params_mut().restore(&checkpoint.params);
            let mut restored = checkpoint.adam.clone();
            restored.lr *= 0.5;
            adam.import_state(restored);
            checkpoint.adam.lr *= 0.5;
            rng = StdRng::from_state(checkpoint.rng);
            epoch = checkpoint.epoch;
            steps_since_ckpt = 0;
            continue;
        }
        epoch += 1;
    }
    if !surrogate.params_finite() {
        return Err(CampaignError::Train(TrainError::Diverged { rollbacks }));
    }
    Ok(surrogate)
}

/// Mean Q-error between surrogate and black-box estimates on held-out probe
/// queries — the imitation-fidelity measure reported in Section 7.4.
pub fn imitation_error(
    surrogate: &CeModel,
    bb: &dyn BlackBox,
    k: &AttackerKnowledge,
    n_probes: usize,
    seed: u64,
) -> Result<f64, ProbeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let probes = generate_queries_schema_only(&k.encoder, &k.patterns, &k.spec, &mut rng, n_probes);
    let mut total = 0.0f64;
    for q in &probes {
        total += q_error(surrogate.estimate_query(q), bb.explain(q)?);
    }
    Ok(total / n_probes as f64)
}
