//! The victim database and the attacker's view of it (threat model,
//! paper Section 2.2).
//!
//! The attacker can: obtain the schema (to craft legal queries), execute
//! `COUNT(*)` SQL (true cardinalities), read `EXPLAIN` output (the black-box
//! model's estimates, with wall-clock latency), and inject queries that the
//! victim's CE model will incrementally train on. The attacker can *not* see
//! the model type, parameters, data, or original training queries — the
//! [`BlackBox`] trait exposes exactly the permitted surface.
//!
//! Every probe is **fallible**: a remote oracle times out, errors, or
//! returns garbage, so the trait returns [`ProbeError`] and campaigns wrap
//! it in a [`crate::resilience::ResilientOracle`]. The concrete [`Victim`]
//! consults [`pace_tensor::fault`] at each probe site (`explain`, `count`,
//! `run-queries`), which is how the chaos suite drives every recovery path
//! deterministically.

use crate::resilience::ProbeError;
use pace_ce::{CeModel, EncodedWorkload};
use pace_engine::Executor;
use pace_tensor::fault::{self, Fault};
use pace_workload::{LabeledQuery, Query, QueryEncoder, Workload};
use std::time::Instant;

/// Maps an injected fault to the probe error a remote oracle would produce.
/// `Corrupt` returns `None`: the probe then *succeeds* with a mangled value,
/// which the resilience layer must catch by validation. Shared with the
/// served adapter ([`crate::served::ServedVictim`]), which exposes the same
/// fault sites.
pub(crate) fn injected_failure(site: &str) -> Result<Option<()>, ProbeError> {
    match fault::probe(site) {
        Some(Fault::Timeout { seconds }) => Err(ProbeError::Timeout { seconds }),
        Some(Fault::Error) => Err(ProbeError::Unavailable),
        Some(Fault::Corrupt) => Ok(Some(())),
        None => Ok(None),
    }
}

/// The attacker-visible interface of a victim database.
pub trait BlackBox {
    /// `EXPLAIN`: the CE model's estimated cardinality.
    fn explain(&self, q: &Query) -> Result<f64, ProbeError>;

    /// `EXPLAIN` with measured inference latency in seconds. The timer wraps
    /// the complete probe — on a wrapper that retries, implementations must
    /// measure the whole retry loop, not just the final successful call, so
    /// oracle flakiness is visible in the latency signal.
    fn explain_timed(&self, q: &Query) -> Result<(f64, f64), ProbeError> {
        let t0 = Instant::now();
        let est = self.explain(q)?;
        Ok((est, t0.elapsed().as_secs_f64()))
    }

    /// `SELECT COUNT(*)`: the true cardinality.
    fn count(&self, q: &Query) -> Result<u64, ProbeError>;

    /// Runs queries against the database; the CE model observes them (with
    /// their true cardinalities) and updates itself incrementally.
    /// Implementations must fail *before* mutating any state, so a failed
    /// call can be retried without double-applying the queries.
    fn run_queries(&mut self, queries: &[Query]) -> Result<(), ProbeError>;

    /// A sample of the historical workload (used to train the anomaly
    /// detector; the paper assumes the attacker "can obtain a set of
    /// historical queries").
    fn historical_sample(&self) -> &[Query];
}

/// Evaluation-side surface shared by every campaignable victim — the direct
/// in-process [`Victim`] and the served adapter
/// ([`crate::served::ServedVictim`], which fronts a `pace_serve::Server`).
///
/// These methods are *measurement*, not attacker capability: the pipeline
/// uses them to compute clean/poisoned q-error baselines and (under the
/// explicit `white_box` ablation) to hand the attacker an exact model copy.
pub trait AttackTarget: BlackBox {
    /// Labels and evaluates a test workload's Q-errors under the victim's
    /// currently *effective* model — for the direct victim its in-place
    /// model, for the served victim the last snapshot that passed shadow
    /// validation (rejected poison waves leave it unchanged).
    fn q_errors(&self, test: &Workload) -> Vec<f64>;

    /// The currently effective model (evaluation side; also the surrogate
    /// source for the `white_box` ablation).
    fn effective_model(&self) -> &CeModel;
}

/// A concrete victim: a trained CE model plus the live database it estimates
/// for.
pub struct Victim<'a> {
    model: CeModel,
    exec: Executor<'a>,
    encoder: QueryEncoder,
    history: Vec<Query>,
    injected: Vec<LabeledQuery>,
}

impl<'a> Victim<'a> {
    /// Wraps a trained model and its database. `history` is the workload the
    /// model was trained on (its distribution is what poisoning queries must
    /// blend into).
    pub fn new(model: CeModel, exec: Executor<'a>, history: Vec<Query>) -> Self {
        let encoder = model.encoder().clone();
        Self {
            model,
            exec,
            encoder,
            history,
            injected: Vec::new(),
        }
    }

    /// Read access to the model — for *evaluation only*, not available to the
    /// attacker.
    pub fn model(&self) -> &CeModel {
        &self.model
    }

    /// Mutable access for evaluation-side snapshot/restore.
    pub fn model_mut(&mut self) -> &mut CeModel {
        &mut self.model
    }

    /// The executor (evaluation side).
    pub fn executor(&self) -> &Executor<'a> {
        &self.exec
    }

    /// Queries injected so far (evaluation side).
    pub fn injected(&self) -> &[LabeledQuery] {
        &self.injected
    }

    /// Restores the injected-query log when a campaign resumes from its
    /// manifest (evaluation side; labels are re-derived locally, no probes).
    pub(crate) fn restore_injected(&mut self, queries: &[Query]) {
        self.injected = queries
            .iter()
            .map(|q| LabeledQuery {
                query: q.clone(),
                cardinality: self.exec.count(q).max(1),
            })
            .collect();
    }

    /// Labels and evaluates a test workload's Q-errors under the current
    /// model state (evaluation side).
    pub fn q_errors(&self, test: &Workload) -> Vec<f64> {
        let data = EncodedWorkload::from_workload(&self.encoder, test);
        self.model.evaluate(&data)
    }
}

impl AttackTarget for Victim<'_> {
    fn q_errors(&self, test: &Workload) -> Vec<f64> {
        Victim::q_errors(self, test)
    }

    fn effective_model(&self) -> &CeModel {
        &self.model
    }
}

impl BlackBox for Victim<'_> {
    fn explain(&self, q: &Query) -> Result<f64, ProbeError> {
        if injected_failure("explain")?.is_some() {
            return Ok(f64::NAN); // corrupted response, caught by validation
        }
        Ok(self.model.estimate_query(q))
    }

    fn count(&self, q: &Query) -> Result<u64, ProbeError> {
        if injected_failure("count")?.is_some() {
            return Ok(u64::MAX); // corrupted response, caught by validation
        }
        Ok(self.exec.count(q))
    }

    fn run_queries(&mut self, queries: &[Query]) -> Result<(), ProbeError> {
        if queries.is_empty() {
            return Ok(());
        }
        // Fault points fire before any mutation so a retry is safe.
        if injected_failure("run-queries")?.is_some() {
            return Err(ProbeError::Corrupted {
                what: "batch submission rejected",
            });
        }
        let labeled: Workload = queries
            .iter()
            .map(|q| LabeledQuery {
                query: q.clone(),
                cardinality: self.exec.count(q).max(1),
            })
            .collect();
        let data = EncodedWorkload::from_workload(&self.encoder, &labeled);
        self.model.update(&data).map_err(ProbeError::Update)?;
        self.injected.extend(labeled);
        Ok(())
    }

    fn historical_sample(&self) -> &[Query] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_ce::{CeConfig, CeModelType};
    use pace_data::{build, DatasetKind, Scale};
    use pace_workload::{generate_queries, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn victim_exposes_threat_model_surface() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 1);
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(2);
        let history = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, 20);
        let model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 3);
        let mut victim = Victim::new(model, Executor::new(&ds), history.clone());

        let q = &history[0];
        let est = victim.explain(q).expect("no fault installed");
        assert!(est >= 1.0);
        let truth = victim.count(q).expect("no fault installed");
        assert_eq!(truth, exec.count(q));
        let (est2, latency) = victim.explain_timed(q).expect("no fault installed");
        assert_eq!(est, est2);
        assert!(latency >= 0.0);
        assert_eq!(victim.historical_sample().len(), 20);

        victim
            .run_queries(&history[..5.min(history.len())])
            .expect("no fault installed");
        assert_eq!(victim.injected().len(), 5);
    }
}
