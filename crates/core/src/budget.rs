//! Budget-constrained attacks (paper Section 8, future work (2)).
//!
//! The attacker may only afford `B ≪ n` poisoning queries. The paper
//! sketches a penalty-function formulation; the concrete mechanism
//! implemented here is **greedy subset selection**: generate a candidate
//! pool (e.g. from a trained PACE generator), then greedily keep the queries
//! whose *simulated* joint injection damages the test workload most,
//! stopping as soon as an extra query would dilute rather than amplify the
//! poison. This realizes the same constrained optimum the penalty method
//! converges to, with an exact marginal-damage curve as a bonus.

use crate::resilience::{CampaignError, ProbeError, ResilientOracle, RetryPolicy};
use crate::victim::BlackBox;
use pace_ce::{CeModel, EncodedWorkload};
use pace_workload::{QErrorSummary, Query, QueryEncoder};

/// Result of budgeted subset selection.
#[derive(Clone, Debug)]
pub struct BudgetedSelection {
    /// Chosen queries, in selection order (highest marginal gain first).
    pub queries: Vec<Query>,
    /// Simulated test mean Q-error after injecting each prefix — a marginal
    /// damage curve.
    pub damage_curve: Vec<f64>,
}

/// Greedily selects at most `budget` queries from `pool` maximizing the
/// simulated post-update test Q-error of `surrogate`.
///
/// Pool labels come from the black-box `COUNT(*)` oracle through a
/// [`ResilientOracle`] with the given policy, so transient oracle faults are
/// retried; an error means the oracle stayed down past every retry.
///
/// Each round simulates the victim's incremental update on the
/// currently-selected set plus each remaining candidate (on a scratch copy of
/// the surrogate) and keeps the candidate with the best damage; selection
/// stops early once no remaining candidate improves the damage (full-batch
/// updates mean an extra query can *dilute* the poison, so fewer queries can
/// genuinely be stronger). `O(budget · |pool|)` simulated updates —
/// affordable because updates are `K` cheap SGD steps.
///
/// # Panics
/// Panics when `pool` is empty or `budget` is 0.
pub fn select_budgeted_poison(
    surrogate: &CeModel,
    bb: &dyn BlackBox,
    encoder: &QueryEncoder,
    pool: &[Query],
    test: &EncodedWorkload,
    budget: usize,
    retry: &RetryPolicy,
) -> Result<BudgetedSelection, CampaignError> {
    assert!(!pool.is_empty(), "empty candidate pool");
    assert!(budget > 0, "zero budget");
    let oracle = ResilientOracle::new(bb, retry.clone());
    let pool_enc: Vec<Vec<f32>> = pool.iter().map(|q| encoder.encode(q)).collect();
    let mut pool_ln: Vec<f32> = Vec::with_capacity(pool.len());
    for q in pool {
        pool_ln.push((oracle.count(q)?.max(1) as f32).ln());
    }

    let mut chosen: Vec<usize> = Vec::new();
    let mut damage_curve = Vec::new();
    let mut remaining: Vec<usize> = (0..pool.len()).collect();

    let mut current_damage = f64::NEG_INFINITY;
    for _ in 0..budget.min(pool.len()) {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &cand) in remaining.iter().enumerate() {
            let mut trial_idx = chosen.clone();
            trial_idx.push(cand);
            let damage = simulate_damage(surrogate, &pool_enc, &pool_ln, &trial_idx, test)?;
            if best.is_none_or(|(_, d)| damage > d) {
                best = Some((pos, damage));
            }
        }
        // `remaining` is non-empty (loop bound), so a best always exists.
        let Some((pos, damage)) = best else { break };
        if damage <= current_damage {
            break; // every further query would dilute the poison
        }
        current_damage = damage;
        chosen.push(remaining.swap_remove(pos));
        damage_curve.push(damage);
    }

    Ok(BudgetedSelection {
        queries: chosen.iter().map(|&i| pool[i].clone()).collect(),
        damage_curve,
    })
}

/// Mean test Q-error of a scratch copy of `surrogate` after updating on the
/// selected queries.
fn simulate_damage(
    surrogate: &CeModel,
    pool_enc: &[Vec<f32>],
    pool_ln: &[f32],
    selected: &[usize],
    test: &EncodedWorkload,
) -> Result<f64, CampaignError> {
    let data = EncodedWorkload {
        enc: selected.iter().map(|&i| pool_enc[i].clone()).collect(),
        ln_card: selected.iter().map(|&i| pool_ln[i]).collect(),
    };
    let mut scratch = surrogate.clone();
    scratch
        .update(&data)
        .map_err(|e| CampaignError::Oracle(ProbeError::Update(e)))?;
    Ok(QErrorSummary::from_samples(&scratch.evaluate(test)).mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::AttackerKnowledge;
    use crate::victim::Victim;
    use pace_ce::{CeConfig, CeModelType};
    use pace_data::{build, DatasetKind, Scale};
    use pace_engine::Executor;
    use pace_workload::{generate_queries, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn budgeted_selection_orders_by_marginal_damage() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 31);
        let exec = Executor::new(&ds);
        let spec = WorkloadSpec::single_table();
        let mut rng = StdRng::seed_from_u64(32);
        let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 300));
        let test_w = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 60));
        let k = AttackerKnowledge::from_public(&ds, spec.clone());
        let mut surrogate = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 33);
        surrogate
            .train(
                &EncodedWorkload::from_workload(&k.encoder, &train),
                &mut rng,
            )
            .expect("surrogate training converges");
        let victim = Victim::new(surrogate.clone(), Executor::new(&ds), vec![]);
        let test = EncodedWorkload::from_workload(&k.encoder, &test_w);

        let pool = generate_queries(&ds, &spec, &mut rng, 30);
        let selection = select_budgeted_poison(
            &surrogate,
            &victim,
            &k.encoder,
            &pool,
            &test,
            5,
            &RetryPolicy::default(),
        )
        .expect("no faults installed");
        assert!(!selection.queries.is_empty());
        assert!(selection.queries.len() <= 5);
        assert_eq!(selection.queries.len(), selection.damage_curve.len());
        // Early stopping makes the curve strictly increasing.
        for w in selection.damage_curve.windows(2) {
            assert!(
                w[1] > w[0],
                "non-monotone curve: {:?}",
                selection.damage_curve
            );
        }
        // The first pick is at least as damaging as any single candidate that
        // was available (it is the argmax over singletons).
        let single_best = selection.damage_curve[0];
        assert!(single_best > 1.0);
        // All selected queries come from the pool.
        for q in &selection.queries {
            assert!(pool.contains(q));
        }
    }

    #[test]
    #[should_panic(expected = "zero budget")]
    fn zero_budget_rejected() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 35);
        let spec = WorkloadSpec::single_table();
        let k = AttackerKnowledge::from_public(&ds, spec.clone());
        let surrogate = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 36);
        let victim = Victim::new(surrogate.clone(), Executor::new(&ds), vec![]);
        let mut rng = StdRng::seed_from_u64(37);
        let pool = generate_queries(&ds, &spec, &mut rng, 3);
        let test = EncodedWorkload {
            enc: vec![vec![0.0; k.encoder.dim()]],
            ln_card: vec![0.0],
        };
        let _ = select_budgeted_poison(
            &surrogate,
            &victim,
            &k.encoder,
            &pool,
            &test,
            0,
            &RetryPolicy::default(),
        );
    }
}
