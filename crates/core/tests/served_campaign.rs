//! Campaigns routed through the validated hot-swap serving path: the swap
//! gate must reject poisoned candidates (and roll their waves back), and an
//! interrupted served campaign must resume from its manifest to the same
//! accept/reject swap ledger bit for bit.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    run_served_campaign, AttackMethod, AttackerKnowledge, CampaignError, PipelineConfig,
    ProbeError, ServedTraffic, ServedVictim,
};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::{Executor, HistogramEstimator};
use pace_serve::{pinned_from_encoded, ServeConfig, Server, SwapError};
use pace_tensor::fault::{self, FaultSpec};
use pace_workload::{generate_queries, Query, QueryEncoder, Workload, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Mutex;

/// The fault injector is process-global; tests that install specs (and tests
/// that require none) must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Setup {
    ds: Dataset,
    history: Vec<Query>,
    test: Workload,
}

fn setup(seed: u64) -> Setup {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), seed);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(seed + 100);
    let spec = WorkloadSpec::single_table();
    let history = generate_queries(&ds, &spec, &mut rng, 200);
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 60));
    Setup { ds, history, test }
}

fn trained_model(s: &Setup, seed: u64) -> (CeModel, EncodedWorkload, Workload) {
    let exec = Executor::new(&s.ds);
    let labeled = exec.label_nonzero(s.history.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&s.ds), &labeled);
    let mut model = CeModel::new(CeModelType::Linear, &s.ds, CeConfig::quick(), seed);
    let mut rng = StdRng::seed_from_u64(seed + 7);
    model
        .train(&data, &mut rng)
        .expect("victim training converges");
    (model, data, labeled)
}

fn served_victim(s: &Setup, seed: u64) -> ServedVictim<'_> {
    let (model, data, labeled) = trained_model(s, seed);
    let fallback = HistogramEstimator::build(&s.ds, 32);
    let server = Server::new(
        ServeConfig::default(),
        s.ds.schema.clone(),
        pinned_from_encoded(&data, 24),
        Some(fallback),
    );
    let pool: Vec<Query> = labeled.iter().take(24).map(|lq| lq.query.clone()).collect();
    let traffic = ServedTraffic::new(pool, seed ^ 0xace);
    ServedVictim::new(
        server,
        model,
        Executor::new(&s.ds),
        s.history.clone(),
        traffic,
    )
    .expect("clean model passes shadow validation")
}

fn manifest_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pace-test-{}-{name}.campaign", std::process::id()))
}

#[test]
fn swap_gate_rejects_a_corrupted_wave_and_rolls_it_back() {
    let _g = lock();
    let s = setup(71);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = PipelineConfig::quick();
    let mut served = served_victim(&s, 73);
    let path = manifest_path("swap-gate");

    // The clean install in `ServedVictim::new` ran before the fault was
    // armed, so serve-swap site visits count from the waves: 1 = wave 0's
    // swap, 2 = wave 1's swap — which the fault corrupts just before
    // shadow validation.
    fault::install(Some(
        FaultSpec::parse("bad_update,site=serve-swap,at=2").expect("valid spec"),
    ));
    let outcome = run_served_campaign(&mut served, AttackMethod::Random, &s.test, &k, &cfg, &path);
    fault::install(None);
    let outcome = outcome.expect("a rejected wave is a defense verdict, not a campaign failure");
    assert!(!path.exists(), "completed campaign removes its manifest");

    // quick() config: 60 poison queries in waves of 16 → 4 waves.
    assert_eq!(outcome.swaps.len(), 4);
    for (w, swap) in outcome.swaps.iter().enumerate() {
        assert_eq!(swap.wave, w as u64);
        assert_eq!(swap.version, 2 + w as u64);
    }
    assert_eq!(
        outcome.swaps[1].result,
        Err(SwapError::NonFiniteParams),
        "the corrupted candidate is refused by shadow validation"
    );
    assert_eq!(outcome.swaps[1].class(), "rejected-by-probe");
    for w in [0, 2, 3] {
        assert_eq!(outcome.swaps[w].result, Ok(()), "wave {w} validates");
        assert_eq!(outcome.swaps[w].class(), "accepted");
    }
    // The rejected wave's 16 queries were rolled back: they never reached
    // the serving model and do not count as injected.
    assert_eq!(served.injected().len(), 60 - 16);
    // Waves 0, 2, 3 accepted → the last accepted version (wave 3 = v5) is
    // in service.
    assert_eq!(served.active_version(), Some(5));
    // Background traffic actually flowed during the waves.
    let summary = served.summary();
    assert!(summary.requests > 100, "waves carry background traffic");
    assert!(summary.learned_served > 0);
}

#[test]
fn served_victim_without_a_pinned_set_is_refused_at_construction() {
    let _g = lock();
    fault::install(None);
    let s = setup(75);
    let (model, _data, labeled) = trained_model(&s, 77);
    let server = Server::new(
        ServeConfig::default(),
        s.ds.schema.clone(),
        Vec::new(),
        Some(HistogramEstimator::build(&s.ds, 32)),
    );
    let pool: Vec<Query> = labeled.iter().take(8).map(|lq| lq.query.clone()).collect();
    let err = ServedVictim::new(
        server,
        model,
        Executor::new(&s.ds),
        s.history.clone(),
        ServedTraffic::new(pool, 79),
    )
    .err();
    assert_eq!(
        err,
        Some(SwapError::NoPinnedSet),
        "a server with no pinned probes must be refused before any wave runs"
    );
}

#[test]
fn interrupted_served_campaign_resumes_to_the_same_swap_ledger() {
    let _g = lock();
    fault::install(None);
    let s = setup(81);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = PipelineConfig::quick();

    // Uninterrupted baseline through the serving path.
    let mut baseline_served = served_victim(&s, 83);
    let base_path = manifest_path("served-baseline");
    let baseline = run_served_campaign(
        &mut baseline_served,
        AttackMethod::Random,
        &s.test,
        &k,
        &cfg,
        &base_path,
    )
    .expect("uninterrupted served campaign completes");
    assert_eq!(baseline.swaps.len(), 4);

    // Identically-seeded served victim; the oracle goes hard-down during
    // wave 1 (visits 2..=5 of the run-queries site exhaust all 4 attempts),
    // after wave 0's swap verdict was persisted.
    let mut served = served_victim(&s, 83);
    let path = manifest_path("served-interrupted");
    fault::install(Some(
        FaultSpec::parse(
            "error,site=run-queries,at=2;error,site=run-queries,at=3;\
             error,site=run-queries,at=4;error,site=run-queries,at=5",
        )
        .expect("valid spec"),
    ));
    let interrupted =
        run_served_campaign(&mut served, AttackMethod::Random, &s.test, &k, &cfg, &path);
    fault::install(None);
    match interrupted {
        Err(CampaignError::Oracle(ProbeError::Exhausted { site, .. })) => {
            assert_eq!(site, "run-queries");
        }
        other => panic!("expected an exhausted oracle, got {other:?}"),
    }
    assert!(path.exists(), "interrupted campaign leaves its manifest");

    // Resume with a *fresh* served victim, as after a process kill: the
    // manifest restores the model, the swap-control state, and the serving
    // runtime's virtual clock.
    let mut resumed_served = served_victim(&s, 83);
    let resumed = run_served_campaign(
        &mut resumed_served,
        AttackMethod::Random,
        &s.test,
        &k,
        &cfg,
        &path,
    )
    .expect("resumed served campaign completes");
    assert!(!path.exists());

    assert_eq!(resumed.poison, baseline.poison);
    assert_eq!(
        resumed.swaps, baseline.swaps,
        "the accept/reject swap ledger must replay bit-identically \
         (virtual times included)"
    );
    assert_eq!(resumed.clean.mean.to_bits(), baseline.clean.mean.to_bits());
    assert_eq!(
        resumed.poisoned.mean.to_bits(),
        baseline.poisoned.mean.to_bits()
    );
    assert_eq!(
        resumed.poisoned.median.to_bits(),
        baseline.poisoned.median.to_bits()
    );
    assert_eq!(resumed.divergence.to_bits(), baseline.divergence.to_bits());
    assert_eq!(
        resumed_served.active_version(),
        baseline_served.active_version()
    );
}
