//! Fault propagation through the deterministic pool: a worker whose probe
//! fails must surface the typed [`ProbeError`] through
//! [`pool::par_try_map`] — never a panic — and with faults off the parallel
//! fan-out must reproduce the sequential probe results exactly.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{BlackBox, ProbeError, Victim};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::fault::{self, FaultSpec};
use pace_tensor::pool;
use pace_workload::{generate_queries, Query, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The fault injector is process-global; tests that install specs (and tests
/// that require none) must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Setup {
    ds: Dataset,
    queries: Vec<Query>,
}

fn setup() -> Setup {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), 5);
    let mut rng = StdRng::seed_from_u64(50);
    let queries = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, 24);
    Setup { ds, queries }
}

fn victim(s: &Setup) -> Victim<'_> {
    let exec = Executor::new(&s.ds);
    let labeled = exec.label_nonzero(s.queries.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&s.ds), &labeled);
    let mut model = CeModel::new(CeModelType::Linear, &s.ds, CeConfig::quick(), 5);
    let mut rng = StdRng::seed_from_u64(51);
    model
        .train(&data, &mut rng)
        .expect("victim training converges");
    Victim::new(model, Executor::new(&s.ds), s.queries.clone())
}

#[test]
fn pool_workers_match_sequential_probes_with_faults_off() {
    let _g = lock();
    fault::install(None);
    let s = setup();
    let v = victim(&s);
    let sequential: Vec<u64> = s
        .queries
        .iter()
        .map(|q| v.count(q).expect("fault-free probe"))
        .collect();
    for threads in [1usize, 3, 8] {
        pool::set_threads(threads);
        let parallel =
            pool::par_try_map(&s.queries, |_, q| v.count(q)).expect("fault-free fan-out");
        assert_eq!(parallel, sequential, "threads={threads}");
    }
    pool::set_threads(0);
}

/// A hard-down oracle (`every=1` fires on every visit, so the trigger is
/// insensitive to the order workers reach the probe site) must surface as a
/// typed `Err` from the fan-out — the pool propagates worker errors instead
/// of panicking, and `par_try_map` reports the lowest-index failure.
#[test]
fn pool_workers_propagate_probe_errors_without_panicking() {
    let _g = lock();
    let s = setup();
    let v = victim(&s);
    fault::install(Some(
        FaultSpec::parse("error,site=count,every=1").expect("valid fault spec"),
    ));
    for threads in [1usize, 4, 8] {
        pool::set_threads(threads);
        let result = pool::par_try_map(&s.queries, |_, q| v.count(q));
        assert!(
            matches!(result, Err(ProbeError::Unavailable)),
            "threads={threads}: expected Err(Unavailable), got {result:?}"
        );
    }
    fault::install(None);
    pool::set_threads(0);
}
