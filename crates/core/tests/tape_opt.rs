//! Acceptance tests for the `PACE_OPT` pass pipeline on the attack's real
//! tapes: the optimizer must remove at least 10% of the nodes of the
//! hypergradient graph (the ISSUE's acceptance floor — measured 50%+ at
//! `K = 4`), the optimized replay must verify against eager execution, and
//! the choke-point hook must activate end-to-end through a CE model update.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::attack::build_hypergradient_tape;
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::opt::{optimize, set_opt_enabled, VERIFY_TOL};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_model_and_data() -> (CeModel, EncodedWorkload) {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(11);
    let labeled = exec.label_nonzero(generate_queries(
        &ds,
        &WorkloadSpec::default(),
        &mut rng,
        64,
    ));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);
    (model, data)
}

#[test]
fn hypergradient_tape_shrinks_at_least_ten_percent_and_verifies() {
    let (model, data) = quick_model_and_data();
    let half = data.enc.len() / 2;
    let n = half.min(24);
    let (g, outputs, inputs) = build_hypergradient_tape(
        &model,
        &data.enc[..n],
        &data.ln_card[..n],
        &data.enc[half..half + n],
        &data.ln_card[half..half + n],
        4,
        1e-2,
    );
    let plan = optimize(&g, &outputs, &inputs, "test::hypergradient_acceptance");
    let stats = plan.stats();
    assert!(
        stats.node_reduction_pct() >= 10.0,
        "pipeline must remove >=10% of hypergradient nodes, got {:.1}%:\n{}",
        stats.node_reduction_pct(),
        stats.render()
    );
    assert!(
        stats.cse_merged > 0,
        "unrolled steps must share subexpressions"
    );
    assert!(
        stats.dead_removed > 0,
        "partial grads must leave dead nodes"
    );
    plan.verify(&g, VERIFY_TOL)
        .expect("optimized hypergradient replay must match eager execution");
}

#[test]
fn opt_hook_runs_through_ce_update_choke_point() {
    let (mut model, data) = quick_model_and_data();
    // The hook verifies the optimized replay on every tape it sees; a
    // divergence under strict mode would panic, so a clean pass through a
    // real incremental update exercises the whole wiring.
    set_opt_enabled(true);
    model.update(&data).expect("update converges");
    set_opt_enabled(false);
}
