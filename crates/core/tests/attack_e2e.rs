//! End-to-end attack behavior: PACE must degrade a trained victim, and must
//! degrade it more than naive baselines.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    run_attack, train_surrogate, AttackMethod, AttackerKnowledge, PipelineConfig, SurrogateConfig,
    Victim,
};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QueryEncoder, Workload, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    ds: Dataset,
    history: Vec<pace_workload::Query>,
    test: Workload,
}

fn setup(kind: DatasetKind, seed: u64) -> Setup {
    let ds = build(kind, Scale::tiny(), seed);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(seed + 100);
    let spec = if kind == DatasetKind::Dmv {
        WorkloadSpec::single_table()
    } else {
        WorkloadSpec {
            max_join_tables: 3,
            ..WorkloadSpec::default()
        }
    };
    let history = generate_queries(&ds, &spec, &mut rng, 400);
    let test_queries = generate_queries(&ds, &spec, &mut rng, 80);
    let test = exec.label_nonzero(test_queries);
    Setup { ds, history, test }
}

fn trained_victim<'a>(s: &'a Setup, ty: CeModelType, seed: u64) -> Victim<'a> {
    let exec = Executor::new(&s.ds);
    let labeled = exec.label_nonzero(s.history.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&s.ds), &labeled);
    let mut model = CeModel::new(ty, &s.ds, CeConfig::quick(), seed);
    let mut rng = StdRng::seed_from_u64(seed + 7);
    model
        .train(&data, &mut rng)
        .expect("victim training converges");
    Victim::new(model, Executor::new(&s.ds), s.history.clone())
}

fn quick_pipeline(ty: CeModelType) -> PipelineConfig {
    PipelineConfig {
        surrogate_type: Some(ty),
        ..PipelineConfig::quick()
    }
}

#[test]
fn pace_degrades_fcn_victim_on_dmv() {
    let s = setup(DatasetKind::Dmv, 1);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let mut victim = trained_victim(&s, CeModelType::Fcn, 3);
    let outcome = run_attack(
        &mut victim,
        AttackMethod::Pace,
        &s.test,
        &k,
        &quick_pipeline(CeModelType::Fcn),
    )
    .expect("attack campaign completes");
    assert!(
        outcome.poisoned.mean > outcome.clean.mean * 1.5,
        "PACE failed to degrade the victim: clean {} -> poisoned {}",
        outcome.clean.mean,
        outcome.poisoned.mean
    );
    assert_eq!(
        outcome.poison.len(),
        outcome
            .poison
            .iter()
            .filter(|q| q.is_valid(&s.ds.schema))
            .count()
    );
}

#[test]
fn pace_beats_random_baseline() {
    let s = setup(DatasetKind::Dmv, 2);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = quick_pipeline(CeModelType::Fcn);

    let mut victim_rand = trained_victim(&s, CeModelType::Fcn, 5);
    let random = run_attack(&mut victim_rand, AttackMethod::Random, &s.test, &k, &cfg)
        .expect("attack campaign completes");

    let mut victim_pace = trained_victim(&s, CeModelType::Fcn, 5);
    let pace = run_attack(&mut victim_pace, AttackMethod::Pace, &s.test, &k, &cfg)
        .expect("attack campaign completes");

    assert!(
        pace.poisoned.mean > random.poisoned.mean,
        "PACE ({}) should beat Random ({})",
        pace.poisoned.mean,
        random.poisoned.mean
    );
}

#[test]
fn attack_works_on_a_join_dataset() {
    let s = setup(DatasetKind::Tpch, 3);
    let spec = WorkloadSpec {
        max_join_tables: 3,
        ..WorkloadSpec::default()
    };
    let k = AttackerKnowledge::from_public(&s.ds, spec);
    let mut victim = trained_victim(&s, CeModelType::Mscn, 7);
    let outcome = run_attack(
        &mut victim,
        AttackMethod::Pace,
        &s.test,
        &k,
        &quick_pipeline(CeModelType::Mscn),
    )
    .expect("attack campaign completes");
    assert!(
        outcome.poisoned.mean > outcome.clean.mean,
        "clean {} -> poisoned {}",
        outcome.clean.mean,
        outcome.poisoned.mean
    );
}

#[test]
fn surrogate_imitates_black_box_better_than_untrained() {
    let s = setup(DatasetKind::Dmv, 4);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let victim = trained_victim(&s, CeModelType::Fcn, 9);
    // Direct imitation is the right fidelity probe: the combined loss (Eq. 7)
    // trades some on-distribution imitation for generalization.
    let cfg = SurrogateConfig {
        strategy: pace_core::ImitationStrategy::Direct,
        ..SurrogateConfig::quick()
    };
    let surrogate =
        train_surrogate(&victim, &k, CeModelType::Fcn, &cfg).expect("surrogate training completes");
    let untrained = CeModel::with_encoder(
        CeModelType::Fcn,
        k.encoder.clone(),
        k.ln_max,
        CeConfig::quick(),
        999,
    );
    let err_trained =
        pace_core::imitation_error(&surrogate, &victim, &k, 100, 11).expect("no fault installed");
    let err_untrained =
        pace_core::imitation_error(&untrained, &victim, &k, 100, 11).expect("no fault installed");
    assert!(
        err_trained < err_untrained,
        "imitation failed: trained {err_trained} vs untrained {err_untrained}"
    );
}

#[test]
fn speculation_identifies_extreme_architectures() {
    // Linear is the most behaviorally distinctive candidate (fastest
    // inference, weakest fit), so even a down-scaled speculation run must
    // identify it. (Full per-type accuracy is measured by the table6
    // experiment binary.)
    let s = setup(DatasetKind::Tpch, 21);
    let k = AttackerKnowledge::from_public(
        &s.ds,
        WorkloadSpec {
            max_join_tables: 3,
            ..WorkloadSpec::default()
        },
    );
    let victim = trained_victim(&s, CeModelType::Linear, 22);
    let cfg = pace_core::SpeculationConfig {
        candidate_train_queries: 120,
        probes_per_group: 6,
        ..pace_core::SpeculationConfig::quick()
    };
    let result = pace_core::speculate_model_type(&victim, &k, &cfg).expect("speculation completes");
    assert_eq!(
        result.speculated,
        CeModelType::Linear,
        "{:?}",
        result.similarities
    );
    // Six candidates scored, all finite.
    assert_eq!(result.similarities.len(), 6);
    assert!(result.similarities.iter().all(|(_, s)| s.is_finite()));
}

#[test]
fn detector_confrontation_lowers_divergence() {
    let s = setup(DatasetKind::Dmv, 6);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = quick_pipeline(CeModelType::Fcn);

    let mut victim_with = trained_victim(&s, CeModelType::Fcn, 13);
    let with_det = run_attack(&mut victim_with, AttackMethod::Pace, &s.test, &k, &cfg)
        .expect("attack campaign completes");

    let mut victim_without = trained_victim(&s, CeModelType::Fcn, 13);
    let without_det = run_attack(
        &mut victim_without,
        AttackMethod::PaceNoDetector,
        &s.test,
        &k,
        &cfg,
    )
    .expect("attack campaign completes");

    assert!(
        with_det.divergence <= without_det.divergence * 1.15,
        "detector confrontation failed to keep divergence in check: with {} vs without {}",
        with_det.divergence,
        without_det.divergence
    );
}

#[test]
fn objective_curve_trends_upward() {
    let s = setup(DatasetKind::Dmv, 8);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let mut victim = trained_victim(&s, CeModelType::Fcn, 17);
    let outcome = run_attack(
        &mut victim,
        AttackMethod::Pace,
        &s.test,
        &k,
        &quick_pipeline(CeModelType::Fcn),
    )
    .expect("attack campaign completes");
    let curve = &outcome.objective_curve;
    assert!(!curve.is_empty());
    let head: f32 =
        curve[..3.min(curve.len())].iter().sum::<f32>() / 3.0f32.min(curve.len() as f32);
    let tail: f32 =
        curve[curve.len().saturating_sub(3)..].iter().sum::<f32>() / 3.0f32.min(curve.len() as f32);
    assert!(
        tail > head * 0.8,
        "objective collapsed during training: head {head}, tail {tail} ({curve:?})"
    );
}
