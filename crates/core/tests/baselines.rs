//! Behavior of the four baseline poisoning strategies.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::attack::{greedy_poison, loss_based_selection, random_poison, train_lbg};
use pace_core::ProbeError;
use pace_core::{AttackConfig, AttackerKnowledge};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, q_error, Query, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (pace_data::Dataset, AttackerKnowledge, CeModel) {
    let ds = build(DatasetKind::Tpch, Scale::tiny(), 41);
    let spec = WorkloadSpec {
        max_join_tables: 3,
        ..WorkloadSpec::default()
    };
    let k = AttackerKnowledge::from_public(&ds, spec.clone());
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 400));
    let mut surrogate = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 43);
    surrogate
        .train(
            &EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &train),
            &mut rng,
        )
        .expect("surrogate training converges");
    (ds, k, surrogate)
}

#[test]
fn random_poison_is_valid_and_sized() {
    let (ds, k, _) = setup();
    let mut rng = StdRng::seed_from_u64(44);
    let qs = random_poison(&k, &mut rng, 37);
    assert_eq!(qs.len(), 37);
    assert!(qs.iter().all(|q| q.is_valid(&ds.schema)));
}

#[test]
fn loss_based_selection_picks_high_loss_queries() {
    let (ds, k, surrogate) = setup();
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(45);
    let mut count = |q: &Query| -> Result<u64, ProbeError> { Ok(exec.count(q)) };
    let selected =
        loss_based_selection(&surrogate, &mut count, &k, &mut rng, 20).expect("no fault installed");
    assert_eq!(selected.len(), 20);

    // Selected queries must have higher mean inference loss than a random
    // sample of the same size.
    let mean_loss = |qs: &[Query]| -> f64 {
        qs.iter()
            .map(|q| q_error(surrogate.estimate_query(q), exec.count(q).max(1) as f64))
            .sum::<f64>()
            / qs.len() as f64
    };
    let random = random_poison(&k, &mut rng, 20);
    assert!(
        mean_loss(&selected) > mean_loss(&random),
        "selection did not beat random: {} vs {}",
        mean_loss(&selected),
        mean_loss(&random)
    );
}

#[test]
fn greedy_poison_builds_valid_multi_predicate_queries() {
    let (ds, k, surrogate) = setup();
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(46);
    let mut count = |q: &Query| -> Result<u64, ProbeError> { Ok(exec.count(q)) };
    let qs = greedy_poison(&surrogate, &mut count, &k, &mut rng, 10).expect("no fault installed");
    assert_eq!(qs.len(), 10);
    assert!(qs.iter().all(|q| q.is_valid(&ds.schema)));
    // Greedy adds one condition per eligible attribute (up to the budget).
    assert!(qs.iter().any(|q| !q.predicates.is_empty()));
}

#[test]
fn lbg_training_increases_generated_inference_loss() {
    let (ds, k, surrogate) = setup();
    let exec = Executor::new(&ds);
    let mut count = |q: &Query| -> Result<u64, ProbeError> { Ok(exec.count(q)) };
    let cfg = AttackConfig {
        iters: 15,
        batch: 32,
        ..AttackConfig::quick()
    };
    let artifacts = train_lbg(&surrogate, &mut count, &k, &cfg).expect("no fault installed");
    let curve = &artifacts.objective_curve;
    assert_eq!(curve.len(), 15);
    let head = curve[..3].iter().sum::<f32>() / 3.0;
    let tail = curve[curve.len() - 3..].iter().sum::<f32>() / 3.0;
    assert!(
        tail > head,
        "Lb-G objective (inference loss of generated queries) did not rise: {head} -> {tail}"
    );
    // Its generator still emits valid queries.
    let mut rng = StdRng::seed_from_u64(47);
    let (qs, _) = artifacts.generator.generate(&mut rng, 25);
    assert!(qs.iter().all(|q| q.is_valid(&ds.schema)));
}
