//! Fault-recovery behavior of the campaign runtime: each injected fault kind
//! must be absorbed by the retry/degradation machinery, and an interrupted
//! campaign must resume bit-identically from its manifest.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    run_campaign, AttackMethod, AttackerKnowledge, CampaignError, PipelineConfig, ProbeError,
    ResilientOracle, RetryPolicy, Victim,
};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::fault::{self, FaultSpec};
use pace_workload::{generate_queries, Query, QueryEncoder, Workload, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Mutex;

/// The fault injector is process-global; tests that install specs (and tests
/// that require none) must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn install(spec: &str) {
    fault::install(Some(FaultSpec::parse(spec).expect("valid fault spec")));
}

struct Setup {
    ds: Dataset,
    history: Vec<Query>,
    test: Workload,
}

fn setup(seed: u64) -> Setup {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), seed);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(seed + 100);
    let spec = WorkloadSpec::single_table();
    let history = generate_queries(&ds, &spec, &mut rng, 200);
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 60));
    Setup { ds, history, test }
}

fn trained_victim(s: &Setup, seed: u64) -> Victim<'_> {
    let exec = Executor::new(&s.ds);
    let labeled = exec.label_nonzero(s.history.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&s.ds), &labeled);
    let mut model = CeModel::new(CeModelType::Linear, &s.ds, CeConfig::quick(), seed);
    let mut rng = StdRng::seed_from_u64(seed + 7);
    model
        .train(&data, &mut rng)
        .expect("victim training converges");
    Victim::new(model, Executor::new(&s.ds), s.history.clone())
}

fn probe_query(s: &Setup) -> Query {
    s.test.first().expect("non-empty test set").query.clone()
}

fn manifest_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pace-test-{}-{name}.campaign", std::process::id()))
}

#[test]
fn timeout_fault_is_retried_and_latency_is_visible() {
    let _g = lock();
    let s = setup(1);
    let victim = trained_victim(&s, 3);
    let q = probe_query(&s);
    install("timeout,site=explain,at=1,lat=0.5");
    let oracle = ResilientOracle::new(&victim, RetryPolicy::default());
    let result = oracle.explain_timed(&q);
    fault::install(None);
    let (est, seconds) = result.expect("one timeout must be absorbed by retry");
    assert!(est.is_finite() && est >= 0.0);
    assert!(
        seconds >= 0.5,
        "injected latency must show up in the measured probe time, got {seconds}"
    );
    let stats = oracle.stats();
    assert!(stats.retries >= 1);
    assert!(stats.faults_absorbed >= 1);
    assert!(oracle.virtual_seconds() >= 0.5);
}

// Latency-accounting regression: `explain_timed` sums the oracle-reported
// seconds of every attempt plus the virtual clock (injected latencies +
// backoff waits). Each component must be charged exactly once — in
// particular, a timeout's injected latency lands on the virtual clock
// only (the failed attempt reports no seconds), and the wrapper's own
// bookkeeping adds nothing.
#[test]
fn explain_timed_charges_timeout_latency_and_backoff_exactly_once() {
    let _g = lock();
    let s = setup(51);
    let victim = trained_victim(&s, 53);
    let q = probe_query(&s);
    let policy = RetryPolicy::default();
    let w0 = policy.backoff("explain", 0);
    install("timeout,site=explain,at=1,lat=0.25");
    let oracle = ResilientOracle::new(&victim, policy);
    let result = oracle.explain_timed(&q);
    fault::install(None);
    let (est, seconds) = result.expect("one timeout is absorbed by retry");
    assert!(est.is_finite() && est >= 0.0);
    let expected_virtual = 0.25 + w0;
    assert_eq!(
        oracle.virtual_seconds().to_bits(),
        expected_virtual.to_bits(),
        "virtual clock must be exactly one injected latency + one backoff, \
         got {} vs {expected_virtual}",
        oracle.virtual_seconds()
    );
    // The remainder is the successful attempt's real (wall-clock) seconds:
    // non-negative and far smaller than the injected latency — if the
    // 0.25 s timeout were double-counted, this margin would be blown.
    let real_attempt = seconds - expected_virtual;
    assert!(
        (0.0..0.2).contains(&real_attempt),
        "attempt time double-counted or negative: {real_attempt}"
    );
}

// The interaction under test: when the deadline cuts a retry short, the
// backoff wait that was *about to be* taken must not be charged to the
// virtual clock (the probe gives up instead of sleeping).
#[test]
fn deadline_cut_retry_never_charges_the_forgone_backoff() {
    let _g = lock();
    let s = setup(55);
    let victim = trained_victim(&s, 57);
    let q = probe_query(&s);
    let w0 = RetryPolicy::default().backoff("explain", 0);
    // Deadline strictly between the injected latency and latency + first
    // backoff: attempt 1 times out, the retry is cut short mid-decision.
    let policy = RetryPolicy {
        deadline: 0.5 + w0 * 0.5,
        ..RetryPolicy::default()
    };
    install("timeout,site=explain,every=1,lat=0.5");
    let oracle = ResilientOracle::new(&victim, policy);
    let result = oracle.explain_timed(&q);
    fault::install(None);
    match result {
        Err(ProbeError::Exhausted { site, attempts, .. }) => {
            assert_eq!(site, "explain");
            assert_eq!(attempts, 1, "the deadline cuts before the second attempt");
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
    assert_eq!(
        oracle.virtual_seconds().to_bits(),
        0.5f64.to_bits(),
        "only the injected latency is charged — the forgone backoff is not, \
         got {}",
        oracle.virtual_seconds()
    );
    assert_eq!(oracle.stats().retries, 0, "no retry actually happened");
}

// Two timeouts with the deadline cutting the second backoff: the clock
// carries both injected latencies and exactly the one wait that was taken.
#[test]
fn multi_retry_deadline_cut_accounts_each_component_once() {
    let _g = lock();
    let s = setup(59);
    let victim = trained_victim(&s, 61);
    let q = probe_query(&s);
    let base = RetryPolicy::default();
    let (w0, w1) = (base.backoff("explain", 0), base.backoff("explain", 1));
    // Survives the first wait, dies mid-decision of the second.
    let policy = RetryPolicy {
        deadline: 0.3 + w0 + 0.3 + w1 * 0.5,
        ..base
    };
    install("timeout,site=explain,every=1,lat=0.3");
    let oracle = ResilientOracle::new(&victim, policy);
    let result = oracle.explain_timed(&q);
    fault::install(None);
    match result {
        Err(ProbeError::Exhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected Exhausted after two attempts, got {other:?}"),
    }
    let expected = 0.3 + w0 + 0.3;
    assert_eq!(
        oracle.virtual_seconds().to_bits(),
        expected.to_bits(),
        "clock must be lat + taken-backoff + lat exactly, got {} vs {expected}",
        oracle.virtual_seconds()
    );
    assert_eq!(oracle.stats().retries, 1, "exactly one backoff was taken");
}

#[test]
fn error_fault_is_retried() {
    let _g = lock();
    let s = setup(5);
    let victim = trained_victim(&s, 7);
    let q = probe_query(&s);
    install("error,site=count,at=1");
    let oracle = ResilientOracle::new(&victim, RetryPolicy::default());
    let result = oracle.count(&q);
    fault::install(None);
    let truth = victim.executor().count(&q);
    assert_eq!(result.expect("one error must be absorbed by retry"), truth);
    assert!(oracle.stats().retries >= 1);
}

#[test]
fn corrupt_responses_are_detected_and_retried() {
    let _g = lock();
    let s = setup(9);
    let victim = trained_victim(&s, 11);
    let q = probe_query(&s);
    install("corrupt,site=explain,at=1;corrupt,site=count,at=1");
    let oracle = ResilientOracle::new(&victim, RetryPolicy::default());
    let est = oracle.explain(&q);
    let cnt = oracle.count(&q);
    fault::install(None);
    let est = est.expect("corrupted estimate must be retried");
    assert!(est.is_finite() && est >= 0.0);
    assert_eq!(
        cnt.expect("corrupted count must be retried"),
        victim.executor().count(&q)
    );
    assert_eq!(oracle.stats().faults_absorbed, 2);
}

#[test]
fn hard_down_oracle_trips_breaker_and_serves_cached_estimates() {
    let _g = lock();
    let s = setup(13);
    let victim = trained_victim(&s, 15);
    let q = probe_query(&s);
    let policy = RetryPolicy {
        max_attempts: 2,
        breaker_threshold: 1,
        ..RetryPolicy::default()
    };
    fault::install(None);
    let oracle = ResilientOracle::new(&victim, policy);
    let healthy = oracle.explain(&q).expect("healthy probe succeeds");
    install("error,site=explain,every=1");
    let degraded = oracle.explain(&q);
    fault::install(None);
    assert_eq!(
        degraded.expect("breaker must degrade to the cached estimate"),
        healthy
    );
    let stats = oracle.stats();
    assert!(stats.breaker_trips >= 1);
    assert!(stats.degraded >= 1);
}

// Regression for the NaN-swallowing degraded-estimate path: the cache
// median used to sort with `partial_cmp(..).unwrap_or(Equal)`, so any NaN
// among the cached values scrambled the sort and the degraded estimate was
// arbitrary. With NaN probes injected via `PACE_FAULTS`, the estimate
// served from the cache median must be finite and bit-for-bit deterministic.
#[test]
fn nan_probes_degrade_to_a_finite_deterministic_median() {
    let _g = lock();
    let s = setup(33);
    let victim = trained_victim(&s, 35);
    let cached: Vec<Query> = s.test.iter().take(5).map(|lq| lq.query.clone()).collect();
    let fresh = s.test.get(10).expect("enough test queries").query.clone();
    let run = || -> f64 {
        fault::install(None);
        let policy = RetryPolicy {
            max_attempts: 2,
            breaker_threshold: 1,
            ..RetryPolicy::default()
        };
        let oracle = ResilientOracle::new(&victim, policy);
        for q in &cached {
            oracle
                .explain(q)
                .expect("healthy probes populate the cache");
        }
        // From here every explain returns NaN: validation rejects each
        // attempt, retries exhaust, the breaker trips, and the uncached
        // query must be answered from the median of the cached estimates.
        install("corrupt,site=explain,every=1");
        let degraded = oracle.explain(&fresh);
        fault::install(None);
        let est = degraded.expect("breaker must degrade to the cache median");
        assert!(
            est.is_finite() && est >= 0.0,
            "degraded estimate must be finite, got {est}"
        );
        let stats = oracle.stats();
        assert!(stats.breaker_trips >= 1);
        assert!(stats.degraded >= 1);
        est
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.to_bits(),
        second.to_bits(),
        "degraded estimate must be deterministic"
    );
}

// When nothing finite is cached, the degradation path must surface a typed
// probe error (which campaigns wrap as `CampaignError::Oracle`) instead of
// fabricating an estimate.
#[test]
fn nan_probes_with_empty_cache_are_a_typed_error() {
    let _g = lock();
    let s = setup(37);
    let victim = trained_victim(&s, 39);
    let q = probe_query(&s);
    let policy = RetryPolicy {
        max_attempts: 2,
        breaker_threshold: 1,
        ..RetryPolicy::default()
    };
    let oracle = ResilientOracle::new(&victim, policy);
    install("corrupt,site=explain,every=1");
    let exhausted = oracle.explain(&q);
    let while_open = oracle.explain(&q);
    fault::install(None);
    match exhausted {
        Err(ProbeError::Exhausted { site, .. }) => assert_eq!(site, "explain"),
        other => panic!("expected Exhausted with an empty cache, got {other:?}"),
    }
    assert!(
        matches!(while_open, Err(ProbeError::Unavailable)),
        "open breaker with an empty cache must be Unavailable, got {while_open:?}"
    );
}

#[test]
fn hard_down_oracle_without_cache_is_a_typed_error() {
    let _g = lock();
    let s = setup(17);
    let victim = trained_victim(&s, 19);
    let q = probe_query(&s);
    install("error,site=count,every=1");
    let policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let oracle = ResilientOracle::new(&victim, policy);
    let result = oracle.count(&q);
    fault::install(None);
    match result {
        Err(ProbeError::Exhausted { site, attempts, .. }) => {
            assert_eq!(site, "count");
            assert_eq!(attempts, 2);
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
}

#[test]
fn run_queries_retries_without_double_applying() {
    let _g = lock();
    let s = setup(21);
    let mut victim = trained_victim(&s, 23);
    let batch: Vec<Query> = s.test.iter().take(8).map(|lq| lq.query.clone()).collect();
    install("error,site=run-queries,at=1");
    let result = pace_core::run_queries_resilient(&mut victim, &batch, &RetryPolicy::default());
    fault::install(None);
    result.expect("one rejected submission must be absorbed by retry");
    assert_eq!(
        victim.injected().len(),
        batch.len(),
        "a retried wave must be applied exactly once"
    );
}

#[test]
fn interrupted_campaign_resumes_bit_identical() {
    let _g = lock();
    fault::install(None);
    let s = setup(25);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = PipelineConfig::quick();

    // Uninterrupted baseline campaign.
    let mut baseline_victim = trained_victim(&s, 27);
    let base_path = manifest_path("baseline");
    let baseline = run_campaign(
        &mut baseline_victim,
        AttackMethod::Random,
        &s.test,
        &k,
        &cfg,
        &base_path,
    )
    .expect("uninterrupted campaign completes");
    assert!(
        !base_path.exists(),
        "completed campaign removes its manifest"
    );

    // Identically-trained victim; the oracle goes hard-down during wave 2
    // (visits 2..=5 of the run-queries site exhaust all 4 attempts).
    let mut victim = trained_victim(&s, 27);
    let path = manifest_path("interrupted");
    install(
        "error,site=run-queries,at=2;error,site=run-queries,at=3;\
         error,site=run-queries,at=4;error,site=run-queries,at=5",
    );
    let interrupted = run_campaign(&mut victim, AttackMethod::Random, &s.test, &k, &cfg, &path);
    fault::install(None);
    match interrupted {
        Err(CampaignError::Oracle(ProbeError::Exhausted { site, .. })) => {
            assert_eq!(site, "run-queries");
        }
        other => panic!("expected an exhausted oracle, got {other:?}"),
    }
    assert!(path.exists(), "interrupted campaign leaves its manifest");

    // Resume: the campaign picks up at the persisted wave boundary and the
    // final outcome matches the uninterrupted run exactly.
    let resumed = run_campaign(&mut victim, AttackMethod::Random, &s.test, &k, &cfg, &path)
        .expect("resumed campaign completes");
    assert!(!path.exists());
    assert_eq!(resumed.poison, baseline.poison);
    assert_eq!(resumed.clean.mean.to_bits(), baseline.clean.mean.to_bits());
    assert_eq!(
        resumed.poisoned.mean.to_bits(),
        baseline.poisoned.mean.to_bits()
    );
    assert_eq!(
        resumed.poisoned.median.to_bits(),
        baseline.poisoned.median.to_bits()
    );
    assert_eq!(
        resumed.poisoned.max.to_bits(),
        baseline.poisoned.max.to_bits()
    );
    assert_eq!(resumed.divergence.to_bits(), baseline.divergence.to_bits());
}

#[test]
fn resuming_with_a_different_method_is_rejected() {
    let _g = lock();
    fault::install(None);
    let s = setup(29);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = PipelineConfig::quick();
    let mut victim = trained_victim(&s, 31);
    let path = manifest_path("method-mismatch");

    // Interrupt a Random campaign so its manifest survives.
    install(
        "error,site=run-queries,at=1;error,site=run-queries,at=2;\
         error,site=run-queries,at=3;error,site=run-queries,at=4",
    );
    let interrupted = run_campaign(&mut victim, AttackMethod::Random, &s.test, &k, &cfg, &path);
    fault::install(None);
    assert!(interrupted.is_err());
    assert!(path.exists());

    let mismatched = run_campaign(&mut victim, AttackMethod::Clean, &s.test, &k, &cfg, &path);
    match mismatched {
        Err(CampaignError::Storage(e)) => {
            assert!(e.to_string().contains("belongs to method"))
        }
        other => panic!("expected a storage error, got {other:?}"),
    }
    std::fs::remove_file(&path).expect("cleanup");
}

// Regression: the manifest used to omit the wave size, so a campaign
// resumed under a different `cfg.wave_size` silently re-sliced the
// remaining poison at shifted boundaries — the resumed run was no longer
// bit-identical to an uninterrupted one. The wave size is now persisted
// and checked: a mismatch fails closed with a typed storage error.
#[test]
fn resuming_with_a_different_wave_size_is_rejected() {
    let _g = lock();
    fault::install(None);
    let s = setup(41);
    let k = AttackerKnowledge::from_public(&s.ds, WorkloadSpec::single_table());
    let cfg = PipelineConfig::quick();
    let mut victim = trained_victim(&s, 43);
    let path = manifest_path("wave-size-mismatch");

    // Interrupt a Random campaign during its first wave so its manifest
    // survives with waves still outstanding.
    install(
        "error,site=run-queries,at=1;error,site=run-queries,at=2;\
         error,site=run-queries,at=3;error,site=run-queries,at=4",
    );
    let interrupted = run_campaign(&mut victim, AttackMethod::Random, &s.test, &k, &cfg, &path);
    fault::install(None);
    assert!(interrupted.is_err());
    assert!(path.exists());

    // Same method, different wave size: the persisted wave boundaries no
    // longer line up with the resuming configuration.
    let halved = PipelineConfig {
        wave_size: cfg.wave_size / 2,
        ..PipelineConfig::quick()
    };
    let mismatched = run_campaign(
        &mut victim,
        AttackMethod::Random,
        &s.test,
        &k,
        &halved,
        &path,
    );
    match mismatched {
        Err(CampaignError::Storage(e)) => {
            assert!(
                e.to_string().contains("wave size"),
                "error must name the wave-size mismatch, got: {e}"
            )
        }
        other => panic!("expected a storage error, got {other:?}"),
    }
    std::fs::remove_file(&path).expect("cleanup");
}
