//! End-to-end behavior of the serving runtime: healthy batching, typed
//! shedding under overload, deadline propagation, degradation to the
//! classical estimator, and hot-swap under live traffic.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::{Executor, HistogramEstimator};
use pace_serve::{
    pinned_from_encoded, Phase, PinnedQuery, Reply, Request, ServeConfig, ServeError, ServeState,
    Server, Source, SwapError, SwapEvent,
};
use pace_tensor::fault::{self, FaultSpec};
use pace_workload::{generate_queries, Query, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The fault injector is process-global; tests that install specs (and
/// tests that require none) must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Setup {
    ds: Dataset,
    model: CeModel,
    pinned: Vec<PinnedQuery>,
    pool: Vec<Query>,
}

fn setup(seed: u64) -> Setup {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), seed);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let spec = WorkloadSpec::single_table();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 160));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), seed + 2);
    model.train(&data, &mut rng).expect("training converges");
    let pool: Vec<Query> = labeled.iter().take(24).map(|lq| lq.query.clone()).collect();
    Setup {
        pinned: pinned_from_encoded(&data, 24),
        ds,
        model,
        pool,
    }
}

fn server(s: &Setup, cfg: ServeConfig) -> Server {
    let fallback = HistogramEstimator::build(&s.ds, 32);
    let mut srv = Server::new(cfg, s.ds.schema.clone(), s.pinned.clone(), Some(fallback));
    srv.try_swap(1, s.model.clone()).expect("initial swap");
    srv
}

fn stream(s: &Setup, phases: &[Phase], seed: u64, deadline: f64) -> Vec<Request> {
    pace_serve::generate(phases, &s.pool, seed, deadline, 0)
}

#[test]
fn rated_load_serves_everything_from_the_learned_path() {
    let _g = lock();
    fault::install(None);
    let s = setup(101);
    let mut srv = server(&s, ServeConfig::default());
    let phases = [Phase {
        name: "rated",
        duration: 1.0,
        rate: 400.0,
    }];
    let replies = srv.run(stream(&s, &phases, 11, 0.25), vec![]);
    assert!(!replies.is_empty());
    for r in &replies {
        let reply = r.outcome.as_ref().expect("no rejections at rated load");
        assert!(reply.estimate.is_finite() && reply.estimate >= 0.0);
        assert_eq!(reply.source, Source::Learned);
        assert!(reply.completed_at >= r.arrival);
    }
    let sum = srv.summary();
    assert_eq!(sum.learned_served, replies.len() as u64);
    assert_eq!(sum.shed, 0);
    assert!(sum.batches > 0);
    assert!(
        sum.max_queue_depth <= srv.summary().max_queue_depth.max(64),
        "queue stays bounded"
    );
    assert_eq!(srv.state(), ServeState::Healthy);
}

#[test]
fn overload_sheds_with_typed_errors_and_bounded_queue() {
    let _g = lock();
    fault::install(None);
    let s = setup(103);
    let cfg = ServeConfig {
        queue_cap: 32,
        fallback_burst: 8.0,
        fallback_rate: 40.0,
        ..ServeConfig::default()
    };
    let cap = cfg.queue_cap;
    let mut srv = server(&s, cfg);
    // Far beyond batch-service capacity (~1000 req/s at default costs).
    let phases = [Phase {
        name: "overload",
        duration: 1.0,
        rate: 4000.0,
    }];
    let replies = srv.run(stream(&s, &phases, 13, 0.25), vec![]);
    let sheds = replies
        .iter()
        .filter(|r| matches!(r.outcome, Err(ServeError::Shed { .. })))
        .count();
    assert!(sheds > 0, "2×+ overload must shed");
    for r in &replies {
        match &r.outcome {
            Ok(Reply { estimate, .. }) => {
                assert!(estimate.is_finite() && *estimate >= 0.0);
            }
            Err(ServeError::Shed { depth }) => assert!(*depth <= cap),
            Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(other) => panic!("unexpected rejection under overload: {other:?}"),
        }
    }
    let sum = srv.summary();
    assert!(sum.max_queue_depth <= cap, "queue never exceeds its cap");
    assert!(
        sum.fallback_served > 0,
        "token-bucket degradation precedes shedding"
    );
    assert_eq!(srv.state(), ServeState::Shedding);
}

#[test]
fn deadlines_are_enforced_at_admission_formation_and_completion() {
    let _g = lock();
    fault::install(None);
    let s = setup(105);
    let mut srv = server(&s, ServeConfig::default());
    // A deadline shorter than the batch window + batch cost cannot be met.
    let tight = Request {
        id: 0,
        arrival: 0.0,
        deadline: 0.001,
        query: s.pool[0].clone(),
    };
    // A request whose deadline has already passed at admission.
    let expired = Request {
        id: 1,
        arrival: 0.5,
        deadline: 0.4,
        query: s.pool[1].clone(),
    };
    let roomy = Request {
        id: 2,
        arrival: 0.6,
        deadline: 0.9,
        query: s.pool[2].clone(),
    };
    let replies = srv.run(vec![tight, expired, roomy], vec![]);
    let by_id = |id: u64| {
        replies
            .iter()
            .find(|r| r.id == id)
            .expect("reply present")
            .outcome
            .clone()
    };
    assert!(matches!(by_id(0), Err(ServeError::DeadlineExceeded { .. })));
    assert!(matches!(by_id(1), Err(ServeError::DeadlineExceeded { .. })));
    let ok = by_id(2).expect("roomy deadline is met");
    assert!(ok.completed_at <= 0.9);
    assert_eq!(srv.summary().deadline_missed, 2);
}

#[test]
fn malformed_requests_are_typed_and_do_not_reach_the_model() {
    let _g = lock();
    fault::install(None);
    let s = setup(107);
    let mut srv = server(&s, ServeConfig::default());
    let bad = Request {
        id: 0,
        arrival: 0.0,
        deadline: 1.0,
        query: Query::new(vec![], vec![]),
    };
    let replies = srv.run(vec![bad], vec![]);
    assert_eq!(replies[0].outcome, Err(ServeError::Malformed));
    assert_eq!(srv.summary().malformed, 1);
    assert_eq!(srv.summary().batches, 0);
}

#[test]
fn nonfinite_model_output_degrades_to_fallback_never_an_error() {
    let _g = lock();
    fault::install(None);
    let s = setup(109);
    // Shadow validation makes a NaN snapshot unreachable through
    // `try_swap`, so the break-glass `force_install` path is the only way
    // to point traffic at one — exactly the scenario the serving side's
    // own non-finite guard exists for.
    let mut garbage = s.model.clone();
    let first = garbage
        .params()
        .iter()
        .next()
        .map(|(id, _)| id)
        .expect("model has params");
    for v in garbage.params_mut().get_mut(first).data_mut() {
        *v = f32::NAN;
    }
    let mut srv = server(&s, ServeConfig::default());
    srv.snapshots().force_install(2, garbage);
    let phases = [Phase {
        name: "rated",
        duration: 0.5,
        rate: 200.0,
    }];
    let replies = srv.run(stream(&s, &phases, 17, 0.25), vec![]);
    for r in &replies {
        let reply = r
            .outcome
            .as_ref()
            .expect("well-formed requests never fail while degraded");
        assert!(
            reply.estimate.is_finite() && reply.estimate >= 0.0,
            "non-finite estimate served: {}",
            reply.estimate
        );
        assert_eq!(reply.source, Source::Fallback);
    }
    let sum = srv.summary();
    assert!(sum.nonfinite_replaced > 0, "the guard actually fired");
    assert!(sum.fallback_served > 0);
    assert_eq!(srv.state(), ServeState::Degraded);
}

#[test]
fn no_model_and_no_fallback_is_a_typed_unhealthy_error() {
    let _g = lock();
    fault::install(None);
    let s = setup(111);
    let mut srv = Server::new(
        ServeConfig::default(),
        s.ds.schema.clone(),
        s.pinned.clone(),
        None,
    );
    let req = Request {
        id: 0,
        arrival: 0.0,
        deadline: 1.0,
        query: s.pool[0].clone(),
    };
    let replies = srv.run(vec![req], vec![]);
    assert_eq!(replies[0].outcome, Err(ServeError::Unhealthy));
}

#[test]
fn bad_update_mid_traffic_rolls_back_with_zero_failed_requests() {
    let _g = lock();
    let s = setup(113);
    let mut srv = server(&s, ServeConfig::default());
    let phases = [Phase {
        name: "rated",
        duration: 1.0,
        rate: 400.0,
    }];
    let requests = stream(&s, &phases, 19, 0.25);
    // The candidate is corrupted by the bad_update fault just before
    // shadow validation, in the middle of the stream.
    fault::install(Some(
        FaultSpec::parse("bad_update,site=serve-swap,at=1").expect("valid spec"),
    ));
    let swaps = vec![SwapEvent {
        at: 0.5,
        version: 2,
        model: s.model.clone(),
    }];
    let replies = srv.run(requests, swaps);
    fault::install(None);
    // Entry 0 is the initial healthy swap from the test helper.
    assert_eq!(srv.swap_log().len(), 2);
    assert_eq!(
        srv.swap_log()[1].result,
        Err(SwapError::NonFiniteParams),
        "corrupted candidate must be rejected"
    );
    assert_eq!(
        srv.snapshots().active_version(),
        Some(1),
        "rollback keeps the previous snapshot"
    );
    for r in &replies {
        let reply = r
            .outcome
            .as_ref()
            .expect("zero failed well-formed requests during the swap window");
        assert!(reply.estimate.is_finite() && reply.estimate >= 0.0);
        assert_eq!(reply.source, Source::Learned);
    }
}

#[test]
fn good_swap_mid_traffic_changes_versions_without_failures() {
    let _g = lock();
    fault::install(None);
    let s = setup(115);
    let mut srv = server(&s, ServeConfig::default());
    let phases = [Phase {
        name: "rated",
        duration: 1.0,
        rate: 400.0,
    }];
    let requests = stream(&s, &phases, 23, 0.25);
    let swaps = vec![SwapEvent {
        at: 0.5,
        version: 2,
        model: s.model.clone(),
    }];
    let replies = srv.run(requests, swaps);
    assert_eq!(srv.swap_log()[0].result, Ok(()));
    assert_eq!(srv.snapshots().active_version(), Some(2));
    assert!(replies.iter().all(|r| r.outcome.is_ok()));
}

#[test]
fn slow_consumer_fault_backs_up_the_queue_but_never_hangs() {
    let _g = lock();
    let s = setup(117);
    let cfg = ServeConfig {
        queue_cap: 24,
        fallback_burst: 4.0,
        fallback_rate: 20.0,
        ..ServeConfig::default()
    };
    let cap = cfg.queue_cap;
    let mut srv = server(&s, cfg);
    let phases = [Phase {
        name: "rated",
        duration: 1.0,
        rate: 400.0,
    }];
    let requests = stream(&s, &phases, 29, 0.1);
    // Every batch takes an extra 50 virtual ms: rated load now exceeds
    // service capacity, so the queue backs up.
    fault::install(Some(
        FaultSpec::parse("slow_consumer,site=serve-batch,every=1,lat=0.05").expect("valid spec"),
    ));
    let replies = srv.run(requests, vec![]);
    fault::install(None);
    let sum = srv.summary();
    assert!(sum.max_queue_depth <= cap);
    assert!(
        sum.shed + sum.deadline_missed + sum.fallback_served > 0,
        "a stalled consumer must surface as backpressure, not a hang"
    );
    // Every request got exactly one recorded outcome.
    assert_eq!(sum.requests as usize, replies.len());
}

#[test]
fn reply_sequences_are_reproducible_across_runs() {
    let _g = lock();
    fault::install(None);
    let s = setup(119);
    let phases = [
        Phase {
            name: "rated",
            duration: 0.5,
            rate: 400.0,
        },
        Phase {
            name: "overload",
            duration: 0.5,
            rate: 3000.0,
        },
    ];
    let run = || {
        let mut srv = server(&s, ServeConfig::default());
        srv.run(stream(&s, &phases, 31, 0.1), vec![])
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        match (&x.outcome, &y.outcome) {
            (Ok(rx), Ok(ry)) => {
                assert_eq!(rx.estimate.to_bits(), ry.estimate.to_bits());
                assert_eq!(rx.source, ry.source);
                assert_eq!(rx.completed_at.to_bits(), ry.completed_at.to_bits());
            }
            (ex, ey) => assert_eq!(ex, ey),
        }
    }
}
