//! Regression test for the `try_swap` check-validate-record race, in its
//! own binary so `pace_runtime::set_threads` cannot interleave with other
//! suites.
//!
//! The bug: `try_swap` checked the ban set / breaker under the `ctl`
//! lock, dropped the lock during shadow validation, then re-acquired it
//! to record the verdict. Several concurrent candidates carrying the
//! *same* version could all pass the initial ban check, all validate, and
//! all record a failure — one logical bad version then counted as many
//! `consecutive_failures` and could trip the update breaker on its own.
//!
//! The fix re-checks ban/breaker under `ctl` after validation and only
//! lets the first attempt record; the rest collapse into plain
//! `VersionBanned`. This test releases four threads at a barrier onto the
//! same bad version and asserts exactly one recorded validation failure.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_serve::{pinned_from_encoded, SnapshotStore, SwapError};
use pace_tensor::fault;
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Barrier, Mutex};

/// Scales every parameter by a large *finite* factor: the candidate keeps
/// passing the cheap `params_finite` pre-check and fails only at the end
/// of the full pinned-set q-error probe. A NaN candidate would fail in
/// nanoseconds and never overlap with its racing duplicates — the finite
/// corruption keeps the check→validate→record window wide open.
fn degrade(model: &mut CeModel) {
    let ids: Vec<_> = model.params().iter().map(|(id, _)| id).collect();
    for id in ids {
        for slot in model.params_mut().get_mut(id).data_mut() {
            *slot *= 64.0;
        }
    }
}

#[test]
fn concurrent_same_version_candidates_record_one_failure() {
    pace_runtime::set_threads(4);
    fault::install(None);

    let ds = build(DatasetKind::Dmv, Scale::tiny(), 211);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(212);
    let spec = WorkloadSpec::single_table();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 240));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 213);
    model.train(&data, &mut rng).expect("training converges");
    let mut bad = model.clone();
    degrade(&mut bad);

    // The race window is check → validate → record. Replicating the
    // pinned set (same median, ~15k probes) stretches the shadow probe to
    // around a millisecond — far past thread wake-up jitter — so the
    // barrier-released threads reliably overlap inside validation. Many
    // rounds amplify the interleaving odds further — the old (non-atomic)
    // code records several failures in virtually every round.
    let pinned: Vec<_> = std::iter::repeat_n(pinned_from_encoded(&data, data.enc.len()), 64)
        .flatten()
        .collect();
    let (good_median, bad_median) = {
        let probe = SnapshotStore::new(pinned.clone(), 1e6, 3);
        (
            probe.shadow_median_qerr(&model),
            probe.shadow_median_qerr(&bad),
        )
    };
    assert!(
        bad_median > good_median * 2.0,
        "degraded candidate must score clearly worse ({bad_median} vs {good_median})"
    );
    let limit = good_median * 1.5;
    for round in 0..32u64 {
        // Breaker threshold 3: under the old double-validation race, four
        // concurrent failures of one version trip the breaker; under the
        // fixed path one logical bad version counts exactly once.
        let store = Arc::new(SnapshotStore::new(pinned.clone(), limit, 3));
        let barrier = Barrier::new(4);
        let results: Mutex<Vec<Result<(), SwapError>>> = Mutex::new(Vec::new());

        // Four pool workers (one task each — a worker blocked at the
        // barrier cannot pull a second task, so all four tasks run
        // concurrently) race the same bad candidate version through
        // `try_swap`.
        pace_runtime::run(4, |_i| {
            let candidate = bad.clone();
            barrier.wait();
            let r = store.try_swap(7, candidate);
            results
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(r);
        });

        let results = results
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        assert_eq!(results.len(), 4);
        let validation_failures = results
            .iter()
            .filter(|r| matches!(r, Err(SwapError::QualityRegression { .. })))
            .count();
        let banned = results
            .iter()
            .filter(|r| matches!(r, Err(SwapError::VersionBanned { version: 7 })))
            .count();
        assert_eq!(
            validation_failures, 1,
            "round {round}: exactly one attempt may record the validation \
             failure, got {results:?}"
        );
        assert_eq!(
            banned, 3,
            "round {round}: racing duplicates must collapse into \
             VersionBanned, got {results:?}"
        );
        assert!(
            !store.breaker_open(),
            "round {round}: one logical bad version must count once, not \
             trip the breaker"
        );
        // The update path is still open: a healthy candidate swaps in.
        store
            .try_swap(8, model.clone())
            .expect("breaker must not have tripped");
        assert_eq!(store.active_version(), Some(8));
    }
}
