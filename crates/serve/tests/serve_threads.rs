//! Thread-count independence of the serving runtime, in its own binary so
//! `pace_runtime::set_threads` cannot interleave with other suites.
//!
//! The server's event machine runs on virtual time and the tensor batches
//! execute on the deterministic pool, so an identical seeded request
//! stream — including overload bursts and a mid-stream hot-swap — must
//! produce a bit-identical reply sequence at `PACE_THREADS=1` and `8`.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::{Executor, HistogramEstimator};
use pace_serve::{pinned_from_encoded, Phase, ReplyRecord, ServeConfig, Server, SwapEvent};
use pace_tensor::fault::{self, FaultSpec};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_at(threads: usize) -> Vec<ReplyRecord> {
    pace_runtime::set_threads(threads);
    fault::install(Some(
        FaultSpec::parse(
            "overload,site=serve-admit,every=40;slow_consumer,site=serve-batch,every=25,lat=0.01",
        )
        .expect("valid spec"),
    ));
    let ds = build(DatasetKind::Dmv, Scale::tiny(), 131);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(132);
    let spec = WorkloadSpec::single_table();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 160));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 133);
    model.train(&data, &mut rng).expect("training converges");
    let pool: Vec<_> = labeled.iter().take(24).map(|lq| lq.query.clone()).collect();

    let fallback = HistogramEstimator::build(&ds, 32);
    let cfg = ServeConfig {
        queue_cap: 32,
        fallback_burst: 8.0,
        fallback_rate: 40.0,
        ..ServeConfig::default()
    };
    let mut srv = Server::new(
        cfg,
        ds.schema.clone(),
        pinned_from_encoded(&data, 24),
        Some(fallback),
    );
    srv.try_swap(1, model.clone()).expect("initial swap");
    let phases = [
        Phase {
            name: "rated",
            duration: 0.4,
            rate: 400.0,
        },
        Phase {
            name: "overload",
            duration: 0.4,
            rate: 2500.0,
        },
        Phase {
            name: "recovery",
            duration: 0.4,
            rate: 400.0,
        },
    ];
    let requests = pace_serve::generate(&phases, &pool, 37, 0.1, 0);
    let swaps = vec![SwapEvent {
        at: 0.9,
        version: 2,
        model,
    }];
    let replies = srv.run(requests, swaps);
    fault::install(None);
    replies
}

#[test]
fn reply_sequence_is_bit_identical_at_1_and_8_threads() {
    let a = run_at(1);
    let b = run_at(8);
    assert_eq!(a.len(), b.len(), "same number of reply records");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id, "same completion order");
        match (&x.outcome, &y.outcome) {
            (Ok(rx), Ok(ry)) => {
                assert_eq!(
                    rx.estimate.to_bits(),
                    ry.estimate.to_bits(),
                    "estimate for id {} differs across thread counts",
                    x.id
                );
                assert_eq!(rx.source, ry.source);
                assert_eq!(rx.completed_at.to_bits(), ry.completed_at.to_bits());
            }
            (ex, ey) => assert_eq!(ex, ey, "typed outcome for id {} differs", x.id),
        }
    }
}
