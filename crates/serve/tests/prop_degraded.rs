//! Property: every response the service produces under shedding or
//! degradation — the fallback-estimator path — is finite and within the
//! classical estimator's documented bounds (`[0, f64::MAX]`), across
//! seeded `PACE_FAULTS` overload scenarios. Rejections are always typed;
//! the queue never exceeds its cap; no request is silently dropped.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::{Executor, HistogramEstimator};
use pace_serve::{
    pinned_from_encoded, Phase, PinnedQuery, ServeConfig, ServeError, Server, Source,
};
use pace_tensor::fault::{self, FaultSpec};
use pace_workload::{generate_queries, Query, QueryEncoder, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Fault injection is process-global; property cases must not interleave.
fn lock() -> MutexGuard<'static, ()> {
    static FAULT_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match FAULT_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Setup {
    ds: Dataset,
    model: CeModel,
    /// NaN params: unreachable through validated swaps, force-installed to
    /// drill the per-item non-finite fallback replacement path.
    garbage: CeModel,
    pinned: Vec<PinnedQuery>,
    pool: Vec<Query>,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 211);
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(212);
        let spec = WorkloadSpec::single_table();
        let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 160));
        let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
        let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 213);
        model.train(&data, &mut rng).expect("training converges");
        let mut garbage = model.clone();
        let first = garbage
            .params()
            .iter()
            .next()
            .map(|(id, _)| id)
            .expect("model has params");
        for v in garbage.params_mut().get_mut(first).data_mut() {
            *v = f32::NAN;
        }
        let pool: Vec<Query> = labeled.iter().take(24).map(|lq| lq.query.clone()).collect();
        Setup {
            pinned: pinned_from_encoded(&data, 24),
            ds,
            model,
            garbage,
            pool,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded overload (burst faults + a rate beyond service capacity)
    /// against randomized caps and budgets: everything served is in
    /// bounds, everything rejected is typed, the queue stays bounded.
    #[test]
    fn degraded_responses_are_finite_and_in_bounds(
        fault_seed in 0u64..1000,
        burst_every in 10u64..80,
        rate in 1500.0f64..6000.0,
        queue_cap in 8usize..48,
        fallback_burst in 2.0f64..16.0,
        deadline in 0.02f64..0.3,
        unhealthy_model in any::<bool>(),
    ) {
        let _guard = lock();
        let s = setup();
        fault::install(Some(
            FaultSpec::parse(&format!(
                "overload,site=serve-admit,every={burst_every};seed={fault_seed}"
            ))
            .expect("valid spec"),
        ));
        let cfg = ServeConfig {
            queue_cap,
            fallback_burst,
            ..ServeConfig::default()
        };
        let fallback = HistogramEstimator::build(&s.ds, 32);
        let mut srv = Server::new(cfg, s.ds.schema.clone(), s.pinned.clone(), Some(fallback));
        srv.try_swap(1, s.model.clone()).expect("initial swap");
        if unhealthy_model {
            // Break-glass install of a NaN snapshot: every learned output
            // must be replaced by a fallback estimate, never served.
            srv.snapshots().force_install(2, s.garbage.clone());
        }
        let phases = [Phase { name: "overload", duration: 0.5, rate }];
        let requests = pace_serve::generate(&phases, &s.pool, fault_seed ^ 0x9e37, deadline, 0);
        let expected = requests.len();
        let replies = srv.run(requests, vec![]);
        fault::install(None);

        prop_assert_eq!(replies.len(), expected, "no request silently dropped");
        let mut fallback_replies = 0usize;
        for r in &replies {
            match &r.outcome {
                Ok(reply) => {
                    prop_assert!(
                        reply.estimate.is_finite(),
                        "non-finite estimate served: {}", reply.estimate
                    );
                    prop_assert!((0.0..=f64::MAX).contains(&reply.estimate));
                    prop_assert!(reply.completed_at >= r.arrival);
                    if reply.source == Source::Fallback {
                        fallback_replies += 1;
                    }
                }
                Err(ServeError::Shed { depth }) => prop_assert!(*depth <= queue_cap),
                Err(ServeError::DeadlineExceeded { deadline, at }) => {
                    prop_assert!(at >= deadline);
                }
                Err(other) => {
                    prop_assert!(false, "untyped/unexpected rejection: {other:?}");
                }
            }
        }
        prop_assert!(
            fallback_replies > 0,
            "overload past capacity must exercise the degraded path"
        );
        prop_assert!(srv.summary().max_queue_depth <= queue_cap);
    }
}
