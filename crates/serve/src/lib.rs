//! `pace-serve` — the overload-hardened serving runtime in front of the
//! learned cardinality estimators.
//!
//! The estimators in `pace-ce` answer one-shot batch calls; a real
//! optimizer's hot path instead sees a *stream* of concurrent estimate
//! requests, models that are retrained and swapped while traffic flows,
//! and load spikes that exceed capacity. This crate supplies the missing
//! deployability layer, with robustness as the contract:
//!
//! * **Bounded batching** ([`Server`]): requests are admitted into a
//!   bounded queue and coalesced into tensor batches executed on the
//!   deterministic pool; the queue never grows past its cap.
//! * **Typed load shedding** ([`ServeError`]): when the queue is at cap
//!   and the degraded-path budget is spent, requests are rejected with
//!   `Shed` — never hung, never silently dropped.
//! * **Deadline propagation**: each request carries an absolute virtual
//!   deadline, enforced at admission, batch formation, and projected
//!   completion.
//! * **Graceful degradation**: when the learned model is out of service,
//!   well-formed requests are answered by the classical estimator
//!   (`pace-engine`'s [`HistogramEstimator`](pace_engine::HistogramEstimator))
//!   — an estimate, not an error.
//! * **Atomic hot-swap** ([`SnapshotStore`]): candidate models are
//!   shadow-validated (finite parameters + pinned-set q-error probe) and
//!   installed with a single pointer store; failed validation rolls back
//!   and trips a per-version circuit breaker.
//!
//! Everything is driven on a virtual clock, so a seeded request stream
//! produces a bit-identical reply sequence at any `PACE_THREADS` — the
//! chaos matrix (`overload`, `slow_consumer`, `bad_update` fault kinds)
//! and the `xtask serve-report` gate rely on that.

#![warn(missing_docs)]

mod error;
pub mod loadgen;
mod server;
mod snapshot;

pub use error::{ServeError, SwapError};
pub use loadgen::{generate, total_duration, Phase, OVERLOAD_BURST};
pub use server::{
    Reply, ReplyRecord, Request, ServeConfig, ServeState, ServeSummary, Server, Source, SwapEvent,
    SwapOutcome,
};
pub use snapshot::{pinned_from_encoded, ModelSnapshot, PinnedQuery, SnapshotStore};
