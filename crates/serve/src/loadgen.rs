//! Seeded open-loop load generation for the serving runtime.
//!
//! Open-loop means arrivals are scheduled by the clock, not by replies —
//! an overloaded server keeps receiving traffic, which is exactly the
//! regime where bounded queues and typed shedding matter. The generator
//! is fully deterministic: arrival jitter and query choice come from a
//! seeded RNG, and the `overload` fault kind (site `serve-admit`)
//! deterministically injects burst arrivals so the chaos matrix can
//! reproduce overload scenarios bit-for-bit.

use crate::server::Request;
use pace_tensor::fault;
use pace_workload::Query;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One load phase: `rate` requests per virtual second for `duration`
/// virtual seconds.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase label (reported in `BENCH_serve.json`).
    pub name: &'static str,
    /// Phase length in virtual seconds.
    pub duration: f64,
    /// Mean arrival rate, requests per virtual second.
    pub rate: f64,
}

/// How many extra same-instant arrivals one `overload` fault firing adds.
pub const OVERLOAD_BURST: usize = 24;

/// Generates the open-loop arrival stream for `phases`, drawing queries
/// round-robin-with-jitter from `pool`. Ids are assigned starting at
/// `first_id` in arrival order; every request gets `deadline` virtual
/// seconds of budget. When the `overload` fault (site `serve-admit`)
/// fires at an arrival, [`OVERLOAD_BURST`] extra requests land at the
/// same instant.
pub fn generate(
    phases: &[Phase],
    pool: &[Query],
    seed: u64,
    deadline: f64,
    first_id: u64,
) -> Vec<Request> {
    assert!(!pool.is_empty(), "query pool must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0.0_f64;
    let mut id = first_id;
    let push = |out: &mut Vec<Request>, id: &mut u64, at: f64, q: &Query| {
        out.push(Request {
            id: *id,
            arrival: at,
            deadline: at + deadline,
            query: q.clone(),
        });
        *id += 1;
    };
    for phase in phases {
        let end = t + phase.duration;
        let mean_gap = 1.0 / phase.rate.max(1e-9);
        while t < end {
            // Jittered inter-arrival in [0.5, 1.5) of the mean gap keeps
            // the rate while avoiding lock-step batching artifacts.
            let jitter: f64 = rng.random_range(0.5..1.5);
            t += mean_gap * jitter;
            if t >= end {
                break;
            }
            let pick = rng.random_range(0..pool.len());
            push(&mut out, &mut id, t, &pool[pick]);
            if fault::overload("serve-admit") {
                for _ in 0..OVERLOAD_BURST {
                    let pick = rng.random_range(0..pool.len());
                    push(&mut out, &mut id, t, &pool[pick]);
                }
            }
        }
        t = end;
    }
    out
}

/// Total virtual duration of `phases`.
pub fn total_duration(phases: &[Phase]) -> f64 {
    phases.iter().map(|p| p.duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_workload::Predicate;

    fn pool() -> Vec<Query> {
        (0..4)
            .map(|i| {
                Query::new(
                    vec![0],
                    vec![Predicate {
                        table: 0,
                        col: 1,
                        lo: i,
                        hi: i + 10,
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn stream_is_seed_deterministic_and_rate_shaped() {
        fault::install(None);
        let phases = [
            Phase {
                name: "ramp",
                duration: 1.0,
                rate: 100.0,
            },
            Phase {
                name: "steady",
                duration: 1.0,
                rate: 400.0,
            },
        ];
        let a = generate(&phases, &pool(), 7, 0.05, 0);
        let b = generate(&phases, &pool(), 7, 0.05, 0);
        assert_eq!(a, b, "same seed, same stream");
        let ramp = a.iter().filter(|r| r.arrival < 1.0).count();
        let steady = a.len() - ramp;
        assert!((80..=120).contains(&ramp), "ramp arrivals: {ramp}");
        assert!((320..=480).contains(&steady), "steady arrivals: {steady}");
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
        assert!(a.iter().all(|r| r.deadline > r.arrival));

        let c = generate(&phases, &pool(), 8, 0.05, 0);
        assert_ne!(a, c, "different seed, different jitter");
    }
}
