//! Versioned model snapshots with shadow-validated atomic hot-swap.
//!
//! The serving runtime never trains in place: a new model arrives as a
//! *candidate snapshot* carrying an operator-assigned version, is
//! shadow-validated off to the side (finite parameters, then a median
//! q-error probe on a pinned held-out query set), and only then replaces
//! the active snapshot with a single pointer store. Readers hold an `Arc`
//! clone, so requests that picked up the old snapshot finish on it —
//! in-flight traffic never observes a half-swapped model.
//!
//! A failed validation *rolls back* (the active snapshot is untouched),
//! trips a per-version circuit breaker (the same version is never
//! re-validated), and counts toward a consecutive-failure breaker that
//! closes the update path entirely until an operator resets it. The
//! `bad_update` fault kind ([`pace_tensor::fault`]) corrupts a candidate's
//! parameters just before validation, so the reject-and-roll-back path is
//! exercised by the chaos matrix.

use crate::error::SwapError;
use pace_ce::{CeModel, EncodedWorkload};
use pace_tensor::fault;
use pace_workload::q_error;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// An immutable, versioned model the batcher serves from.
pub struct ModelSnapshot {
    /// Operator-assigned version label (monotonic by convention, not
    /// enforced — the per-version breaker keys on this).
    pub version: u64,
    /// The validated model.
    pub model: CeModel,
}

/// One held-out probe: an encoded query pinned with its true cardinality.
#[derive(Clone, Debug)]
pub struct PinnedQuery {
    /// Encoded query row (the active encoder's layout).
    pub enc: Vec<f32>,
    /// True cardinality.
    pub truth: f64,
}

/// Takes the first `n` queries of an encoded workload as the pinned
/// validation set.
pub fn pinned_from_encoded(data: &EncodedWorkload, n: usize) -> Vec<PinnedQuery> {
    data.enc
        .iter()
        .zip(&data.ln_card)
        .take(n)
        .map(|(enc, &lt)| PinnedQuery {
            enc: enc.clone(),
            truth: f64::from(lt).exp(),
        })
        .collect()
}

/// Mutable swap-control state, held under one lock.
struct SwapCtl {
    banned: BTreeSet<u64>,
    consecutive_failures: u32,
    breaker_open: bool,
}

/// The store: one active snapshot behind a reader lock, swap control
/// behind a second.
pub struct SnapshotStore {
    active: RwLock<Option<Arc<ModelSnapshot>>>,
    ctl: Mutex<SwapCtl>,
    pinned: Vec<PinnedQuery>,
    qerr_limit: f64,
    breaker_threshold: u32,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SnapshotStore {
    /// An empty store (no active snapshot — the server degrades until the
    /// first candidate validates). `qerr_limit` bounds the pinned-set median
    /// q-error a candidate may score; after `breaker_threshold` consecutive
    /// rejections the update path closes.
    pub fn new(pinned: Vec<PinnedQuery>, qerr_limit: f64, breaker_threshold: u32) -> Self {
        Self {
            active: RwLock::new(None),
            ctl: Mutex::new(SwapCtl {
                banned: BTreeSet::new(),
                consecutive_failures: 0,
                breaker_open: false,
            }),
            pinned,
            qerr_limit,
            breaker_threshold: breaker_threshold.max(1),
        }
    }

    /// The active snapshot, if any. Cloning the `Arc` is the whole read
    /// path — a concurrent swap cannot invalidate it.
    pub fn current(&self) -> Option<Arc<ModelSnapshot>> {
        match self.active.read() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Version of the active snapshot, if any.
    pub fn active_version(&self) -> Option<u64> {
        self.current().map(|s| s.version)
    }

    /// Whether the consecutive-failure breaker is open.
    pub fn breaker_open(&self) -> bool {
        recover(self.ctl.lock()).breaker_open
    }

    /// Reopens the update path after the consecutive-failure breaker
    /// tripped. Per-version bans stay: a version that failed validation
    /// once is never retried.
    pub fn reset_breaker(&self) {
        let mut ctl = recover(self.ctl.lock());
        ctl.breaker_open = false;
        ctl.consecutive_failures = 0;
    }

    /// Restores swap-control state when a campaign resumes from a
    /// manifest: re-bans the versions that had failed validation before
    /// the interruption and sets the consecutive-failure count (the
    /// breaker re-opens when the count is at or past the threshold). A
    /// resumed run must see the same bans and breaker state as an
    /// uninterrupted one, or its remaining swap attempts diverge.
    pub fn restore_ctl(&self, banned: &[u64], consecutive_failures: u32) {
        let mut ctl = recover(self.ctl.lock());
        ctl.banned.extend(banned.iter().copied());
        ctl.consecutive_failures = consecutive_failures;
        ctl.breaker_open = consecutive_failures >= self.breaker_threshold;
    }

    /// Median q-error of `model` on the pinned set (shadow probe only, no
    /// state change). Non-finite estimates poison the median to infinity so
    /// they can never pass the limit check. With an empty pinned set the
    /// probe is vacuous and returns 1.0 — which is why [`try_swap`]
    /// refuses empty-pinned stores outright with
    /// [`SwapError::NoPinnedSet`] instead of consulting this.
    ///
    /// [`try_swap`]: SnapshotStore::try_swap
    pub fn shadow_median_qerr(&self, model: &CeModel) -> f64 {
        if self.pinned.is_empty() {
            return 1.0;
        }
        let encs: Vec<Vec<f32>> = self.pinned.iter().map(|p| p.enc.clone()).collect();
        let ests = model.estimate_encoded_batch(&encs);
        let mut errs: Vec<f64> = ests
            .iter()
            .zip(&self.pinned)
            .map(|(&e, p)| {
                if e.is_finite() {
                    q_error(e, p.truth)
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        // Nearest-rank median.
        errs[(errs.len() - 1) / 2]
    }

    /// Validates `candidate` and, on success, atomically swaps it in.
    ///
    /// The `bad_update` fault kind (site `serve-swap`) corrupts the
    /// candidate's parameters before validation, exercising the rollback
    /// path deterministically.
    ///
    /// Validation runs *outside* the control lock (it is the expensive
    /// part), so two candidates carrying the same version can race to the
    /// probe. The verdict is only *recorded* after re-checking the ban set
    /// and breaker under the lock: whichever attempt records first wins,
    /// and the loser is turned into a plain [`SwapError::VersionBanned`] /
    /// [`SwapError::BreakerOpen`] without touching `consecutive_failures`
    /// or the active snapshot — one logical bad version counts as exactly
    /// one failure, no matter how many threads submitted it.
    ///
    /// # Errors
    /// [`SwapError::NoPinnedSet`] when the store has no pinned probes (the
    /// validation would be vacuous); [`SwapError::BreakerOpen`] when too
    /// many consecutive candidates failed; [`SwapError::VersionBanned`]
    /// when this version failed before; [`SwapError::NonFiniteParams`] /
    /// [`SwapError::QualityRegression`] when shadow validation rejects the
    /// candidate — the active snapshot is left untouched (rollback).
    pub fn try_swap(&self, version: u64, mut candidate: CeModel) -> Result<(), SwapError> {
        if self.pinned.is_empty() {
            pace_trace::SERVE_SWAPS_REJECTED.add(1);
            return Err(SwapError::NoPinnedSet);
        }
        {
            let ctl = recover(self.ctl.lock());
            if ctl.breaker_open {
                pace_trace::SERVE_SWAPS_REJECTED.add(1);
                return Err(SwapError::BreakerOpen);
            }
            if ctl.banned.contains(&version) {
                pace_trace::SERVE_SWAPS_REJECTED.add(1);
                return Err(SwapError::VersionBanned { version });
            }
        }
        if fault::bad_update("serve-swap") {
            corrupt_params(&mut candidate);
        }
        let verdict = {
            let _span = pace_trace::span("serve::shadow-validate");
            self.validate(&candidate)
        };
        // Re-acquire the control lock and hold it across the whole
        // record step. A concurrent attempt with the same version may have
        // recorded its verdict while we validated — its decision stands.
        let mut ctl = recover(self.ctl.lock());
        if ctl.breaker_open {
            pace_trace::SERVE_SWAPS_REJECTED.add(1);
            return Err(SwapError::BreakerOpen);
        }
        if ctl.banned.contains(&version) {
            pace_trace::SERVE_SWAPS_REJECTED.add(1);
            return Err(SwapError::VersionBanned { version });
        }
        match verdict {
            Ok(()) => {
                let snapshot = Arc::new(ModelSnapshot {
                    version,
                    model: candidate,
                });
                match self.active.write() {
                    Ok(mut g) => *g = Some(snapshot),
                    Err(poisoned) => *poisoned.into_inner() = Some(snapshot),
                }
                ctl.consecutive_failures = 0;
                pace_trace::SERVE_SWAPS.add(1);
                Ok(())
            }
            Err(e) => {
                ctl.banned.insert(version);
                ctl.consecutive_failures += 1;
                if ctl.consecutive_failures >= self.breaker_threshold {
                    ctl.breaker_open = true;
                }
                pace_trace::SERVE_SWAPS_REJECTED.add(1);
                Err(e)
            }
        }
    }

    /// Break-glass install: swaps `model` in **without** shadow validation.
    /// Exists for operator override and for chaos drills of the serving
    /// side's own non-finite guard (with this architecture's sigmoid-
    /// squashed output, only an unvalidated snapshot can emit NaN — a
    /// validated one cannot). Normal updates go through [`try_swap`].
    ///
    /// [`try_swap`]: SnapshotStore::try_swap
    pub fn force_install(&self, version: u64, model: CeModel) {
        let snapshot = Arc::new(ModelSnapshot { version, model });
        match self.active.write() {
            Ok(mut g) => *g = Some(snapshot),
            Err(poisoned) => *poisoned.into_inner() = Some(snapshot),
        }
        // Deliberately NOT `SERVE_SWAPS`: a break-glass install bypassed
        // validation and must stay distinguishable in traces.
        pace_trace::SERVE_FORCE_INSTALLS.add(1);
    }

    fn validate(&self, candidate: &CeModel) -> Result<(), SwapError> {
        if !candidate.params_finite() {
            return Err(SwapError::NonFiniteParams);
        }
        let median = self.shadow_median_qerr(candidate);
        // A NaN median is a regression, not a pass.
        if median.is_nan() || median > self.qerr_limit {
            return Err(SwapError::QualityRegression {
                median,
                limit: self.qerr_limit,
            });
        }
        Ok(())
    }
}

/// Writes a NaN into the candidate's first parameter — the `bad_update`
/// fault's corruption model (a torn or garbage incremental update).
fn corrupt_params(model: &mut CeModel) {
    let first = model.params().iter().next().map(|(id, _)| id);
    if let Some(id) = first {
        if let Some(slot) = model.params_mut().get_mut(id).data_mut().first_mut() {
            *slot = f32::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_ce::{CeConfig, CeModelType};
    use pace_data::{build, DatasetKind, Scale};
    use pace_engine::Executor;
    use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Mutex as StdMutex;

    /// The fault injector is process-global; swap tests that install specs
    /// must not interleave.
    static FAULT_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        match FAULT_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn trained_setup(seed: u64) -> (CeModel, Vec<PinnedQuery>) {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), seed);
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let spec = WorkloadSpec::single_table();
        let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 160));
        let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
        let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), seed + 2);
        model.train(&data, &mut rng).expect("training converges");
        (model, pinned_from_encoded(&data, 32))
    }

    #[test]
    fn healthy_candidate_swaps_in_and_failed_candidate_rolls_back() {
        let _g = lock();
        fault::install(None);
        let (model, pinned) = trained_setup(41);
        let store = SnapshotStore::new(pinned, 1e6, 3);
        assert!(store.current().is_none());
        store.try_swap(1, model.clone()).expect("healthy candidate");
        assert_eq!(store.active_version(), Some(1));

        // A corrupted candidate is rejected; the active snapshot survives.
        let mut bad = model.clone();
        corrupt_params(&mut bad);
        assert_eq!(store.try_swap(2, bad), Err(SwapError::NonFiniteParams));
        assert_eq!(store.active_version(), Some(1), "rollback keeps v1");

        // The failed version is banned without re-validation.
        assert_eq!(
            store.try_swap(2, model.clone()),
            Err(SwapError::VersionBanned { version: 2 })
        );
    }

    #[test]
    fn quality_regression_is_rejected_by_the_pinned_probe() {
        let _g = lock();
        fault::install(None);
        let (model, pinned) = trained_setup(43);
        let honest_median = {
            let probe = SnapshotStore::new(pinned.clone(), 1e6, 3);
            probe.shadow_median_qerr(&model)
        };
        // A limit just below the model's own score must reject it.
        let store = SnapshotStore::new(pinned, honest_median * 0.5, 3);
        match store.try_swap(1, model) {
            Err(SwapError::QualityRegression { median, limit }) => {
                assert!(median > limit);
            }
            other => panic!("expected QualityRegression, got {other:?}"),
        }
        assert!(store.current().is_none());
    }

    #[test]
    fn consecutive_failures_trip_the_update_breaker() {
        let _g = lock();
        fault::install(None);
        let (model, pinned) = trained_setup(45);
        let store = SnapshotStore::new(pinned, 1e6, 2);
        for v in 10..12 {
            let mut bad = model.clone();
            corrupt_params(&mut bad);
            assert_eq!(store.try_swap(v, bad), Err(SwapError::NonFiniteParams));
        }
        assert!(store.breaker_open());
        assert_eq!(
            store.try_swap(12, model.clone()),
            Err(SwapError::BreakerOpen)
        );
        store.reset_breaker();
        store
            .try_swap(12, model)
            .expect("breaker reset reopens swaps");
        assert_eq!(store.active_version(), Some(12));
    }

    #[test]
    fn empty_pinned_set_refuses_swaps_with_a_typed_error() {
        let _g = lock();
        fault::install(None);
        let (model, _pinned) = trained_setup(49);
        let store = SnapshotStore::new(Vec::new(), 1e6, 3);
        assert_eq!(store.try_swap(1, model), Err(SwapError::NoPinnedSet));
        assert!(store.current().is_none(), "nothing may install vacuously");
        assert!(!store.breaker_open(), "refusal is not a validation failure");
    }

    #[test]
    fn force_install_counts_apart_from_validated_swaps() {
        let _g = lock();
        fault::install(None);
        let (model, pinned) = trained_setup(51);
        let store = SnapshotStore::new(pinned, 1e6, 3);
        // Counters are no-ops unless a trace sink is armed.
        let trace_path = std::env::temp_dir().join("pace-force-install-counter.jsonl");
        pace_trace::install(Some(trace_path.clone()));
        let swaps_before = pace_trace::SERVE_SWAPS.get();
        let force_before = pace_trace::SERVE_FORCE_INSTALLS.get();
        store.force_install(9, model);
        let swaps_after = pace_trace::SERVE_SWAPS.get();
        let force_after = pace_trace::SERVE_FORCE_INSTALLS.get();
        pace_trace::install(None);
        let _ = std::fs::remove_file(&trace_path);
        assert_eq!(
            swaps_after, swaps_before,
            "a break-glass install must not count as a validated swap"
        );
        assert_eq!(force_after, force_before + 1);
        assert_eq!(store.active_version(), Some(9));
    }

    #[test]
    fn bad_update_fault_corrupts_the_candidate_before_validation() {
        let _g = lock();
        let (model, pinned) = trained_setup(47);
        let store = SnapshotStore::new(pinned, 1e6, 5);
        fault::install(Some(
            fault::FaultSpec::parse("bad_update,site=serve-swap,at=1").expect("valid spec"),
        ));
        let first = store.try_swap(1, model.clone());
        let second = store.try_swap(2, model);
        fault::install(None);
        assert_eq!(
            first,
            Err(SwapError::NonFiniteParams),
            "fault fires on the first swap attempt"
        );
        assert_eq!(second, Ok(()), "fault is one-shot; next candidate passes");
        assert_eq!(store.active_version(), Some(2));
    }
}
