//! The serving runtime: bounded admission, deadline-aware batching,
//! degradation, and shedding — as a deterministic discrete-event machine.
//!
//! All timing is *virtual*: requests carry virtual arrival timestamps,
//! batches fire at computed virtual instants, and execution charges a
//! configured virtual cost (plus any `slow_consumer` fault latency). The
//! actual tensor math runs for real on the deterministic pool, whose
//! results are bit-identical at any `PACE_THREADS` — so the full reply
//! sequence (values, sources, typed errors, ordering) is reproducible
//! across thread counts and runs. That is what lets the chaos matrix
//! assert bit-identity on a *serving* workload, not just on kernels.
//!
//! # State machine
//!
//! * **Healthy** — the learned model serves; requests queue (bounded) and
//!   execute in coalesced tensor batches.
//! * **Degraded** — the model is unhealthy (non-finite output observed, no
//!   validated snapshot) *or* the queue is at cap; requests are answered by
//!   the classical fallback estimator. Queue-overflow fallback is
//!   token-bucket limited so overload cannot silently route the whole
//!   stream around the bounded queue.
//! * **Shedding** — queue at cap *and* the fallback budget is spent;
//!   requests are rejected with [`ServeError::Shed`]. The queue never
//!   grows past its cap and the server never hangs.
//!
//! # Deadline propagation
//!
//! A request's absolute deadline is checked at three points: admission
//! (already expired → rejected, never queued), batch formation (expired
//! while queued → evicted before encoding), and projected completion
//! (deadline earlier than the batch's computed finish time → evicted
//! before kernel execution, and the batch cost is recomputed for the
//! survivors). Fallback-path replies check their completion time the same
//! way. Every miss is the typed [`ServeError::DeadlineExceeded`].

use crate::error::ServeError;
use crate::snapshot::{ModelSnapshot, PinnedQuery, SnapshotStore};
use crate::SwapError;
use pace_data::Schema;
use pace_engine::{CardEstimator, HistogramEstimator};
use pace_tensor::fault;
use pace_workload::Query;
use std::collections::VecDeque;
use std::sync::Arc;

/// Tuning knobs of the serving runtime. All times are virtual seconds.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission-queue cap; depth never exceeds this.
    pub queue_cap: usize,
    /// Largest tensor batch the batcher forms.
    pub max_batch: usize,
    /// How long the oldest queued request waits for co-travellers before
    /// the batch fires anyway.
    pub batch_window: f64,
    /// Fixed virtual cost per batch dispatch.
    pub base_cost: f64,
    /// Additional virtual cost per batched item.
    pub per_item_cost: f64,
    /// Virtual cost of one fallback (classical) estimate.
    pub fallback_cost: f64,
    /// Token-bucket refill rate (tokens per virtual second) for the
    /// queue-overflow fallback path.
    pub fallback_rate: f64,
    /// Token-bucket capacity for the queue-overflow fallback path.
    pub fallback_burst: f64,
    /// Median pinned-set q-error above which a candidate snapshot is
    /// rejected at hot-swap.
    pub swap_qerr_limit: f64,
    /// Consecutive swap rejections that close the update path.
    pub swap_breaker_threshold: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            max_batch: 16,
            batch_window: 0.002,
            base_cost: 0.002,
            per_item_cost: 0.0008,
            fallback_cost: 0.0002,
            fallback_rate: 200.0,
            fallback_burst: 20.0,
            swap_qerr_limit: 1e6,
            swap_breaker_threshold: 3,
        }
    }
}

/// One estimate request with admission metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-assigned id, echoed in the reply record.
    pub id: u64,
    /// Virtual arrival time.
    pub arrival: f64,
    /// Absolute virtual deadline; a reply after this instant is a miss.
    pub deadline: f64,
    /// The query to estimate.
    pub query: Query,
}

/// Which estimator produced a served estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The active learned snapshot, via a coalesced tensor batch.
    Learned,
    /// The classical fallback estimator (degraded path, or a per-item
    /// replacement of a non-finite learned output).
    Fallback,
}

/// A successful reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The cardinality estimate — always finite and ≥ 0.
    pub estimate: f64,
    /// Which path produced it.
    pub source: Source,
    /// Virtual completion time.
    pub completed_at: f64,
}

/// The full record of one request's fate.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplyRecord {
    /// The request's id.
    pub id: u64,
    /// Its virtual arrival time.
    pub arrival: f64,
    /// Estimate or typed rejection.
    pub outcome: Result<Reply, ServeError>,
}

/// A scheduled hot-swap attempt.
pub struct SwapEvent {
    /// Virtual time at which the candidate arrives.
    pub at: f64,
    /// Operator-assigned version.
    pub version: u64,
    /// The candidate model.
    pub model: pace_ce::CeModel,
}

/// Outcome of one [`SwapEvent`].
#[derive(Clone, Debug, PartialEq)]
pub struct SwapOutcome {
    /// Virtual time of the attempt.
    pub at: f64,
    /// The candidate's version.
    pub version: u64,
    /// Swap result; `Err` means the active snapshot was kept (rollback).
    pub result: Result<(), SwapError>,
}

/// Coarse service state, updated at every admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeState {
    /// Learned path serving, queue below cap.
    Healthy,
    /// Fallback estimator serving (model unhealthy or queue at cap).
    Degraded,
    /// Requests being rejected with typed sheds.
    Shedding,
}

/// Aggregate counters for one server lifetime (local to the instance —
/// the process-global `pace-trace` metrics are updated as well).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests admitted (well- or mal-formed).
    pub requests: u64,
    /// Typed sheds.
    pub shed: u64,
    /// Replies served by the fallback estimator.
    pub fallback_served: u64,
    /// Replies served by the learned model.
    pub learned_served: u64,
    /// Deadline misses (admission, formation, or completion).
    pub deadline_missed: u64,
    /// Malformed requests rejected at admission.
    pub malformed: u64,
    /// `Unhealthy` rejections (no model, no fallback).
    pub unhealthy_errors: u64,
    /// Non-finite learned outputs replaced by fallback estimates.
    pub nonfinite_replaced: u64,
    /// Tensor batches executed.
    pub batches: u64,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
}

struct Pending {
    req: Request,
    enqueued_at: f64,
}

/// The serving runtime. Construct once, then [`run`](Server::run) a
/// request stream (optionally interleaved with hot-swap events) through it.
pub struct Server {
    cfg: ServeConfig,
    store: SnapshotStore,
    fallback: Option<HistogramEstimator>,
    schema: Schema,
    now: f64,
    busy_until: f64,
    queue: VecDeque<Pending>,
    tokens: f64,
    last_refill: f64,
    model_healthy: bool,
    state: ServeState,
    summary: ServeSummary,
    replies: Vec<ReplyRecord>,
    swap_log: Vec<SwapOutcome>,
}

/// Forces a raw fallback estimate into the documented bounds: finite and
/// in `[0, f64::MAX]`. (`HistogramEstimator` can overflow to `inf` on
/// pathological joins, and `inf · 0` selectivities are NaN.)
fn clamp_estimate(est: f64) -> f64 {
    if est.is_finite() {
        est.max(0.0)
    } else if est > 0.0 {
        f64::MAX
    } else {
        0.0
    }
}

impl Server {
    /// A server with an empty snapshot store (degraded until the first
    /// candidate validates — see [`Server::try_swap`]). `fallback` is the
    /// classical estimator used for degradation; without one, degraded
    /// requests get [`ServeError::Unhealthy`].
    pub fn new(
        cfg: ServeConfig,
        schema: Schema,
        pinned: Vec<PinnedQuery>,
        fallback: Option<HistogramEstimator>,
    ) -> Self {
        let store = SnapshotStore::new(pinned, cfg.swap_qerr_limit, cfg.swap_breaker_threshold);
        let tokens = cfg.fallback_burst;
        Self {
            cfg,
            store,
            fallback,
            schema,
            now: 0.0,
            busy_until: 0.0,
            queue: VecDeque::new(),
            tokens,
            last_refill: 0.0,
            model_healthy: false,
            state: ServeState::Degraded,
            summary: ServeSummary::default(),
            replies: Vec::new(),
            swap_log: Vec::new(),
        }
    }

    /// Validates and (on success) atomically installs `model` as the
    /// serving snapshot, outside of any request stream.
    ///
    /// # Errors
    /// Propagates [`SwapError`] from shadow validation; the previous
    /// snapshot (if any) stays active.
    pub fn try_swap(&mut self, version: u64, model: pace_ce::CeModel) -> Result<(), SwapError> {
        let result = self.store.try_swap(version, model);
        if result.is_ok() {
            self.model_healthy = true;
            self.state = ServeState::Healthy;
        }
        self.swap_log.push(SwapOutcome {
            at: self.now,
            version,
            result: result.clone(),
        });
        result
    }

    /// Break-glass install: puts `model` into service **without** shadow
    /// validation and marks the learned path healthy. Exists for operator
    /// override and for campaign *resume*, where a model that already
    /// passed validation before a crash is being restored from a manifest
    /// — re-validating it against the pinned probe would be redundant, but
    /// the install must still be visible in traces
    /// (`SERVE_FORCE_INSTALLS`), so restores are never mistaken for
    /// validated swaps. Not recorded in the swap log: the log holds swap
    /// *attempts*, and a restore replays no attempt.
    pub fn force_install(&mut self, version: u64, model: pace_ce::CeModel) {
        self.store.force_install(version, model);
        self.model_healthy = true;
        self.state = ServeState::Healthy;
    }

    /// The timing state a resumed campaign must persist and restore for
    /// bit-identical replay: `(now, busy_until, fallback tokens,
    /// last token refill)`. The clock alone is not enough — the batcher's
    /// busy horizon shifts the next wave's fire times, and the token
    /// bucket's fill level decides the next shed-versus-fallback call.
    pub fn clock_state(&self) -> (f64, f64, f64, f64) {
        (self.now, self.busy_until, self.tokens, self.last_refill)
    }

    /// Restores [`clock_state`](Server::clock_state) when a campaign
    /// resumes from a manifest, re-entering the exact virtual instant the
    /// manifest was persisted at so the resumed waves' batches, sheds, and
    /// swap events fire identically to an uninterrupted run. `now` and
    /// `busy_until` only move forward; `tokens` is clamped to the
    /// configured burst so a corrupt manifest cannot mint budget.
    pub fn restore_clock(&mut self, now: f64, busy_until: f64, tokens: f64, last_refill: f64) {
        self.now = self.now.max(now);
        self.busy_until = self.busy_until.max(busy_until);
        self.tokens = tokens.clamp(0.0, self.cfg.fallback_burst);
        self.last_refill = last_refill;
    }

    /// Current coarse state.
    pub fn state(&self) -> ServeState {
        self.state
    }

    /// Lifetime counters.
    pub fn summary(&self) -> &ServeSummary {
        &self.summary
    }

    /// Every hot-swap attempt and its outcome, in virtual-time order.
    pub fn swap_log(&self) -> &[SwapOutcome] {
        &self.swap_log
    }

    /// The snapshot store (read access — active version, breaker state).
    pub fn snapshots(&self) -> &SnapshotStore {
        &self.store
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Runs a request stream (and scheduled swap events) to completion and
    /// returns the reply records appended by this call, in completion
    /// order. Requests are sorted by `(arrival, id)`; arrivals earlier
    /// than the server's clock are admitted at the clock. The server can
    /// be `run` repeatedly; virtual time carries over.
    pub fn run(
        &mut self,
        mut requests: Vec<Request>,
        mut swaps: Vec<SwapEvent>,
    ) -> Vec<ReplyRecord> {
        let _span = pace_trace::span("serve::run");
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
        swaps.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.version.cmp(&b.version)));
        let mark = self.replies.len();
        let mut requests: VecDeque<Request> = requests.into();
        let mut swaps: VecDeque<SwapEvent> = swaps.into();
        loop {
            let t_batch = self.next_fire_time();
            let t_swap = swaps.front().map(|s| s.at.max(self.now));
            let t_arr = requests.front().map(|r| r.arrival.max(self.now));
            // Earliest event wins; ties fire batches first (frees queue
            // slots before the same-instant arrival is admitted), then
            // swaps, then arrivals.
            let best = [t_batch, t_swap, t_arr]
                .iter()
                .flatten()
                .copied()
                .fold(f64::INFINITY, f64::min);
            if best.is_infinite() {
                break;
            }
            if t_batch.is_some_and(|t| t <= best) {
                self.fire_batch();
            } else if t_swap.is_some_and(|t| t <= best) {
                let s = swaps.pop_front().expect("swap event present");
                self.now = self.now.max(s.at);
                let _ = self.try_swap(s.version, s.model);
            } else {
                let r = requests.pop_front().expect("arrival present");
                self.now = self.now.max(r.arrival);
                self.admit(r);
            }
        }
        self.replies[mark..].to_vec()
    }

    /// When the current queue contents would fire, if ever.
    fn next_fire_time(&self) -> Option<f64> {
        let oldest = self.queue.front()?;
        let trigger = if self.queue.len() >= self.cfg.max_batch {
            // A full batch is ready the moment its last member arrived.
            self.queue[self.cfg.max_batch - 1].enqueued_at
        } else {
            oldest.enqueued_at + self.cfg.batch_window
        };
        Some(trigger.max(self.busy_until).max(self.now))
    }

    fn refill_tokens(&mut self) {
        let dt = (self.now - self.last_refill).max(0.0);
        self.tokens = (self.tokens + dt * self.cfg.fallback_rate).min(self.cfg.fallback_burst);
        self.last_refill = self.now;
    }

    fn reply(&mut self, id: u64, arrival: f64, outcome: Result<Reply, ServeError>) {
        if let Ok(r) = &outcome {
            pace_trace::SERVE_LATENCY_US.record(((r.completed_at - arrival) * 1e6) as u64);
        }
        self.replies.push(ReplyRecord {
            id,
            arrival,
            outcome,
        });
    }

    fn miss_deadline(&mut self, req: &Request, at: f64) {
        self.summary.deadline_missed += 1;
        pace_trace::SERVE_DEADLINE_MISSES.add(1);
        self.reply(
            req.id,
            req.arrival,
            Err(ServeError::DeadlineExceeded {
                deadline: req.deadline,
                at,
            }),
        );
    }

    /// Serves `req` through the classical estimator, completing at
    /// `now + fallback_cost`.
    fn serve_fallback(&mut self, req: Request) {
        let done = self.now + self.cfg.fallback_cost;
        if req.deadline < done {
            self.miss_deadline(&req, done);
            return;
        }
        let est = match &self.fallback {
            Some(f) => clamp_estimate(f.estimate(&req.query)),
            None => {
                self.summary.unhealthy_errors += 1;
                self.reply(req.id, req.arrival, Err(ServeError::Unhealthy));
                return;
            }
        };
        self.summary.fallback_served += 1;
        pace_trace::SERVE_FALLBACK.add(1);
        self.reply(
            req.id,
            req.arrival,
            Ok(Reply {
                estimate: est,
                source: Source::Fallback,
                completed_at: done,
            }),
        );
    }

    /// Admission: the Healthy → Degraded → Shedding decision.
    fn admit(&mut self, req: Request) {
        self.summary.requests += 1;
        pace_trace::SERVE_REQUESTS.add(1);
        self.refill_tokens();
        if !req.query.is_valid(&self.schema) {
            self.summary.malformed += 1;
            self.reply(req.id, req.arrival, Err(ServeError::Malformed));
            return;
        }
        if req.deadline <= self.now {
            self.miss_deadline(&req, self.now);
            return;
        }
        let model_up = self.model_healthy && self.store.current().is_some();
        if model_up && self.queue.len() < self.cfg.queue_cap {
            self.state = ServeState::Healthy;
            self.queue.push_back(Pending {
                enqueued_at: self.now,
                req,
            });
            self.summary.max_queue_depth = self.summary.max_queue_depth.max(self.queue.len());
            pace_trace::SERVE_QUEUE_DEPTH.record(self.queue.len() as u64);
            return;
        }
        if !model_up {
            // Model out of service: unconditional degradation — the
            // fallback is cheap and well-formed requests must not fail.
            self.state = ServeState::Degraded;
            self.serve_fallback(req);
            return;
        }
        // Queue at cap with a healthy model: spend a fallback token, or shed.
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.state = ServeState::Degraded;
            self.serve_fallback(req);
        } else {
            self.state = ServeState::Shedding;
            self.summary.shed += 1;
            pace_trace::SERVE_SHED.add(1);
            let depth = self.queue.len();
            self.reply(req.id, req.arrival, Err(ServeError::Shed { depth }));
        }
    }

    /// Forms and executes one batch at its computed fire time.
    fn fire_batch(&mut self) {
        let fire = match self.next_fire_time() {
            Some(t) => t,
            None => return,
        };
        self.now = self.now.max(fire);
        let n = self.queue.len().min(self.cfg.max_batch);
        let mut batch: Vec<Pending> = self.queue.drain(..n).collect();

        // Deadline propagation, stage 2: evict requests that expired while
        // queued, before spending any encode/kernel work on them.
        let (expired, live): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|p| p.req.deadline < fire);
        batch = live;
        for p in expired {
            self.miss_deadline(&p.req, fire);
        }

        // Stage 3: projected completion. The batch's virtual cost is known
        // up front; requests that cannot make it are evicted and the cost
        // recomputed for the survivors (their deadlines are ≥ the old
        // completion time, so one recomputation suffices).
        let extra = fault::slow_consumer("serve-batch").unwrap_or(0.0);
        let (base, per_item) = (self.cfg.base_cost, self.cfg.per_item_cost);
        let cost = move |len: usize| base + per_item * len as f64 + extra;
        let mut done = fire + cost(batch.len());
        let (dead, live): (Vec<_>, Vec<_>) = batch.into_iter().partition(|p| p.req.deadline < done);
        batch = live;
        for p in dead {
            self.miss_deadline(&p.req, done);
        }
        done = fire + cost(batch.len());

        if batch.is_empty() {
            self.busy_until = self.busy_until.max(fire);
            return;
        }
        self.summary.batches += 1;
        pace_trace::SERVE_BATCHES.add(1);
        pace_trace::SERVE_BATCH_SIZE.record(batch.len() as u64);

        let snap: Option<Arc<ModelSnapshot>> = self.store.current();
        let ests: Vec<f64> = match &snap {
            Some(s) => {
                let _span = pace_trace::span("serve::batch");
                let encs: Vec<Vec<f32>> = batch
                    .iter()
                    .map(|p| s.model.encoder().encode(&p.req.query))
                    .collect();
                s.model.estimate_encoded_batch(&encs)
            }
            None => vec![f64::NAN; batch.len()],
        };
        self.busy_until = done;
        for (p, est) in batch.into_iter().zip(ests) {
            if est.is_finite() && est >= 0.0 {
                self.summary.learned_served += 1;
                self.reply(
                    p.req.id,
                    p.req.arrival,
                    Ok(Reply {
                        estimate: est,
                        source: Source::Learned,
                        completed_at: done,
                    }),
                );
            } else {
                // A non-finite (or negative) learned output is never
                // served: replace per-request with the fallback estimate
                // and take the model out of service.
                self.summary.nonfinite_replaced += 1;
                pace_trace::SERVE_NONFINITE_REPLACED.add(1);
                self.model_healthy = false;
                self.state = ServeState::Degraded;
                match &self.fallback {
                    Some(f) => {
                        let fb = clamp_estimate(f.estimate(&p.req.query));
                        self.summary.fallback_served += 1;
                        pace_trace::SERVE_FALLBACK.add(1);
                        self.reply(
                            p.req.id,
                            p.req.arrival,
                            Ok(Reply {
                                estimate: fb,
                                source: Source::Fallback,
                                completed_at: done,
                            }),
                        );
                    }
                    None => {
                        self.summary.unhealthy_errors += 1;
                        self.reply(p.req.id, p.req.arrival, Err(ServeError::Unhealthy));
                    }
                }
            }
        }
    }
}
