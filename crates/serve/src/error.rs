//! Typed failure surface of the serving runtime.
//!
//! The contract: a well-formed request is *never* answered with an untyped
//! panic or a silent hang. Either it gets an estimate (learned or fallback),
//! or it gets exactly one of the [`ServeError`] variants below, chosen by
//! the admission/batching state machine. Model hot-swap failures are a
//! separate surface ([`SwapError`]) because they concern operators, not
//! request callers — a rejected swap must be invisible to in-flight traffic.

use std::fmt;

/// Why a request was not answered with an estimate.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The admission queue is at its configured cap and the degraded-path
    /// budget is exhausted; the request was rejected instead of queued
    /// unboundedly. `depth` is the queue depth observed at rejection.
    Shed {
        /// Admission-queue depth when the request was turned away.
        depth: usize,
    },
    /// The request's deadline elapsed before a reply could be produced —
    /// at admission, at batch formation, or at projected batch completion.
    DeadlineExceeded {
        /// The request's absolute deadline (virtual seconds).
        deadline: f64,
        /// Virtual time at which the miss was detected.
        at: f64,
    },
    /// The learned model is out of service and no fallback estimator is
    /// configured; the runtime has nothing safe to answer with.
    Unhealthy,
    /// The request is not well-formed against the dataset schema
    /// (disconnected join pattern, predicate on an unknown attribute, or
    /// reversed bounds); such requests are rejected at admission and do not
    /// count against availability SLOs.
    Malformed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shed { depth } => {
                write!(f, "request shed: admission queue at cap (depth {depth})")
            }
            Self::DeadlineExceeded { deadline, at } => {
                write!(f, "deadline {deadline:.6}s exceeded at t={at:.6}s")
            }
            Self::Unhealthy => {
                write!(f, "model unhealthy and no fallback estimator configured")
            }
            Self::Malformed => write!(f, "malformed request rejected at admission"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a candidate model snapshot was not swapped in.
#[derive(Clone, Debug, PartialEq)]
pub enum SwapError {
    /// The candidate has non-finite parameters (`params_finite` failed).
    NonFiniteParams,
    /// The candidate's median q-error on the pinned held-out probe set
    /// exceeds the configured limit.
    QualityRegression {
        /// Median q-error the candidate scored on the pinned set.
        median: f64,
        /// The configured acceptance limit.
        limit: f64,
    },
    /// This version already failed validation once; its per-version breaker
    /// is open and it is rejected without re-validation.
    VersionBanned {
        /// The banned version.
        version: u64,
    },
    /// Too many consecutive candidates failed validation; the update path's
    /// circuit breaker is open until [`reset`](crate::SnapshotStore::reset_breaker).
    BreakerOpen,
    /// The store has no pinned validation queries, so the q-error probe
    /// would be vacuous (any finite-param candidate would pass). Swaps are
    /// refused outright: the defense cannot be silently disabled by wiring
    /// a server up without a pinned set.
    NoPinnedSet,
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteParams => write!(f, "candidate snapshot has non-finite parameters"),
            Self::QualityRegression { median, limit } => write!(
                f,
                "candidate median q-error {median:.3} exceeds limit {limit:.3}"
            ),
            Self::VersionBanned { version } => {
                write!(f, "version {version} previously failed validation")
            }
            Self::BreakerOpen => write!(f, "update circuit breaker is open"),
            Self::NoPinnedSet => {
                write!(f, "no pinned validation set: shadow probe would be vacuous")
            }
        }
    }
}

impl std::error::Error for SwapError {}
