//! Template-based workload generation.
//!
//! The paper generates IMDB and STATS workloads "based on the templates in
//! IMDB-JOB and STATS-CEB". This module defines the corresponding template
//! families over this repo's synthetic schemas — fixed join patterns with a
//! set of filterable attributes each — and a generator that instantiates
//! them with data-centered predicates.

use crate::gen::WorkloadSpec;
use crate::query::{Predicate, Query};
use pace_data::Dataset;
use rand::Rng;

/// A named query template: a fixed join pattern plus the attributes its
/// instances may filter on.
#[derive(Clone, Debug)]
pub struct QueryTemplate {
    /// Template name (mirrors the JOB/CEB family naming style).
    pub name: &'static str,
    /// Table names of the join pattern.
    pub tables: &'static [&'static str],
    /// `(table, column)` attribute names instances may filter.
    pub attrs: &'static [(&'static str, &'static str)],
}

/// Join-order-benchmark-style templates over the synthetic IMDB schema.
pub fn imdb_templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate {
            name: "job-1: production era",
            tables: &["title"],
            attrs: &[("title", "production_year"), ("title", "imdb_index")],
        },
        QueryTemplate {
            name: "job-2: company movies",
            tables: &["title", "movie_companies", "company_name"],
            attrs: &[
                ("title", "production_year"),
                ("movie_companies", "note"),
                ("company_name", "country_code"),
            ],
        },
        QueryTemplate {
            name: "job-3: info lookups",
            tables: &["title", "movie_info", "info_type"],
            attrs: &[
                ("title", "production_year"),
                ("movie_info", "info"),
                ("info_type", "code"),
            ],
        },
        QueryTemplate {
            name: "job-4: ratings",
            tables: &["title", "movie_info_idx"],
            attrs: &[("title", "production_year"), ("movie_info_idx", "info_val")],
        },
        QueryTemplate {
            name: "job-5: keyworded titles",
            tables: &["title", "movie_keyword", "keyword"],
            attrs: &[("title", "production_year"), ("keyword", "phonetic")],
        },
        QueryTemplate {
            name: "job-6: cast",
            tables: &["title", "cast_info", "name"],
            attrs: &[
                ("title", "production_year"),
                ("cast_info", "nr_order"),
                ("name", "gender"),
            ],
        },
        QueryTemplate {
            name: "job-7: roles",
            tables: &["cast_info", "role_type", "char_name"],
            attrs: &[
                ("cast_info", "nr_order"),
                ("role_type", "role"),
                ("char_name", "name_pcode"),
            ],
        },
        QueryTemplate {
            name: "job-8: person info",
            tables: &["name", "person_info", "aka_name"],
            attrs: &[
                ("name", "gender"),
                ("person_info", "note"),
                ("aka_name", "pcode"),
            ],
        },
    ]
}

/// STATS-CEB-style templates over the synthetic Stack Exchange schema.
pub fn stats_templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate {
            name: "ceb-1: user reputation",
            tables: &["users"],
            attrs: &[
                ("users", "reputation"),
                ("users", "upvotes"),
                ("users", "creation_year"),
            ],
        },
        QueryTemplate {
            name: "ceb-2: user posts",
            tables: &["users", "posts"],
            attrs: &[
                ("users", "reputation"),
                ("posts", "score"),
                ("posts", "view_count"),
                ("posts", "creation_year"),
            ],
        },
        QueryTemplate {
            name: "ceb-3: commented posts",
            tables: &["posts", "comments"],
            attrs: &[
                ("posts", "score"),
                ("comments", "score"),
                ("comments", "creation_year"),
            ],
        },
        QueryTemplate {
            name: "ceb-4: voted posts",
            tables: &["posts", "votes"],
            attrs: &[
                ("posts", "view_count"),
                ("votes", "vote_type"),
                ("votes", "creation_year"),
            ],
        },
        QueryTemplate {
            name: "ceb-5: badged users' posts",
            tables: &["badges", "users", "posts"],
            attrs: &[
                ("badges", "class"),
                ("users", "reputation"),
                ("posts", "answer_count"),
            ],
        },
        QueryTemplate {
            name: "ceb-6: post history",
            tables: &["posts", "post_history"],
            attrs: &[("posts", "score"), ("post_history", "type")],
        },
        QueryTemplate {
            name: "ceb-7: linked posts",
            tables: &["posts", "post_links"],
            attrs: &[("posts", "view_count"), ("post_links", "link_type")],
        },
        QueryTemplate {
            name: "ceb-8: tagged discussions",
            tables: &["posts", "tags", "comments"],
            attrs: &[("tags", "count"), ("comments", "score")],
        },
    ]
}

/// The template family for a dataset, when the paper prescribes one.
pub fn templates_for(ds: &Dataset) -> Option<Vec<QueryTemplate>> {
    match ds.schema.name.as_str() {
        "imdb" => Some(imdb_templates()),
        "stats" => Some(stats_templates()),
        _ => None,
    }
}

/// Instantiates `count` queries from the template family: uniform template
/// choice, a random non-empty subset of the template's attributes, and
/// predicates centered on data per `spec`.
///
/// # Panics
/// Panics when a template references names missing from the schema (a
/// template/schema mismatch is a programming error).
pub fn generate_from_templates(
    ds: &Dataset,
    templates: &[QueryTemplate],
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    count: usize,
) -> Vec<Query> {
    assert!(!templates.is_empty(), "no templates supplied");
    (0..count)
        .map(|_| {
            let t = &templates[rng.random_range(0..templates.len())];
            instantiate_template(ds, t, spec, rng)
        })
        .collect()
}

/// Instantiates a single template.
pub fn instantiate_template(
    ds: &Dataset,
    template: &QueryTemplate,
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
) -> Query {
    let tables: Vec<usize> = template.tables.iter().map(|n| ds.schema.table(n)).collect();
    let resolved: Vec<(usize, usize)> = template
        .attrs
        .iter()
        .map(|(tn, cn)| {
            let t = ds.schema.table(tn);
            (t, ds.schema.tables[t].col(cn))
        })
        .collect();
    let n_preds = rng.random_range(1..=resolved.len().min(spec.max_predicates.max(1)));
    let mut pool = resolved;
    let mut predicates = Vec::with_capacity(n_preds);
    for _ in 0..n_preds {
        let i = rng.random_range(0..pool.len());
        let (t, c) = pool.swap_remove(i);
        predicates.push(template_predicate(ds, spec, rng, t, c));
    }
    Query::new(tables, predicates)
}

fn template_predicate(
    ds: &Dataset,
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    table: usize,
    col: usize,
) -> Predicate {
    crate::gen::random_predicate(ds, spec, rng, table, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn imdb_templates_resolve_and_generate_valid_queries() {
        let ds = build(DatasetKind::Imdb, Scale::tiny(), 81);
        let templates = templates_for(&ds).expect("imdb has templates");
        assert_eq!(templates.len(), 8);
        let mut rng = StdRng::seed_from_u64(82);
        let qs = generate_from_templates(&ds, &templates, &WorkloadSpec::default(), &mut rng, 200);
        for q in &qs {
            assert!(q.is_valid(&ds.schema), "invalid template query {q:?}");
        }
        // Every template family should show up over 200 draws.
        let distinct_patterns: std::collections::HashSet<Vec<usize>> =
            qs.iter().map(|q| q.tables.clone()).collect();
        assert!(
            distinct_patterns.len() >= 6,
            "templates underused: {distinct_patterns:?}"
        );
    }

    #[test]
    fn stats_templates_resolve_and_generate_valid_queries() {
        let ds = build(DatasetKind::Stats, Scale::tiny(), 83);
        let templates = templates_for(&ds).expect("stats has templates");
        let mut rng = StdRng::seed_from_u64(84);
        for q in generate_from_templates(&ds, &templates, &WorkloadSpec::default(), &mut rng, 200) {
            assert!(q.is_valid(&ds.schema), "invalid template query {q:?}");
        }
    }

    #[test]
    fn non_template_datasets_return_none() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 85);
        assert!(templates_for(&ds).is_none());
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 86);
        assert!(templates_for(&ds).is_none());
    }

    #[test]
    fn template_patterns_are_connected() {
        for kind in [DatasetKind::Imdb, DatasetKind::Stats] {
            let ds = build(kind, Scale::tiny(), 87);
            for t in templates_for(&ds).expect("templated dataset") {
                let tables: Vec<usize> = t.tables.iter().map(|n| ds.schema.table(n)).collect();
                assert!(
                    ds.schema.is_connected(&tables),
                    "template {} disconnected",
                    t.name
                );
            }
        }
    }
}
