//! `pace-workload` — the SPJ query model shared by every crate in the
//! reproduction: queries and labeled workloads, the paper's `T + 2A` vector
//! encoding, seeded workload generators, and evaluation metrics (Q-error
//! summaries, Jensen–Shannon divergence between query distributions).
//!
//! # Example
//!
//! ```
//! use pace_data::{build, DatasetKind, Scale};
//! use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ds = build(DatasetKind::Tpch, Scale::tiny(), 1);
//! let enc = QueryEncoder::new(&ds);
//! let mut rng = StdRng::seed_from_u64(2);
//! let queries = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 10);
//! for q in &queries {
//!     let v = enc.encode(q);
//!     assert_eq!(v.len(), enc.dim());
//!     assert_eq!(enc.decode(&v).tables, q.tables);
//! }
//! ```

#![warn(missing_docs)]

mod encode;
mod gen;
mod metrics;
mod query;
mod templates;

pub use encode::QueryEncoder;
pub use gen::{
    generate_queries, generate_queries_schema_only, random_predicate, random_query_for_pattern,
    schema_only_query_for_pattern, WorkloadSpec,
};
pub use metrics::{js_divergence, q_error, QErrorSummary};
pub use query::{LabeledQuery, Predicate, Query, Workload};
pub use templates::{
    generate_from_templates, imdb_templates, instantiate_template, stats_templates, templates_for,
    QueryTemplate,
};
