//! Random SPJ workload generation.
//!
//! Generates "historical"/training/test workloads the way the paper does for
//! DMV and TPC-H (random queries over the schema) and template-style for
//! IMDB/STATS (queries drawn from the schema's connected join patterns, with
//! predicates centered on populated data regions so cardinalities are
//! non-trivial).

use crate::encode::QueryEncoder;
use crate::query::{Predicate, Query};
use pace_data::Dataset;
use rand::Rng;

/// Parameters of the workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Maximum number of tables in a join pattern.
    pub max_join_tables: usize,
    /// Maximum number of range predicates per query.
    pub max_predicates: usize,
    /// Probability mass decay per extra join table (smaller ⇒ more joins).
    pub join_size_decay: f64,
    /// Predicate width as a fraction of the attribute domain is drawn
    /// log-uniformly from this range.
    pub width_range: (f64, f64),
    /// When true, predicate centers are sampled from actual rows (queries hit
    /// populated regions); when false, centers are uniform over the domain.
    pub center_on_data: bool,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            max_join_tables: 4,
            max_predicates: 4,
            join_size_decay: 0.55,
            width_range: (0.02, 0.6),
            center_on_data: true,
        }
    }
}

impl WorkloadSpec {
    /// A spec for single-table workloads.
    pub fn single_table() -> Self {
        Self {
            max_join_tables: 1,
            ..Self::default()
        }
    }
}

/// Generates `count` random valid queries over `ds`.
pub fn generate_queries(
    ds: &Dataset,
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    count: usize,
) -> Vec<Query> {
    let patterns = ds.schema.connected_patterns(spec.max_join_tables.max(1));
    assert!(!patterns.is_empty(), "schema has no join patterns");
    // Weight patterns by size: weight ∝ decay^(size-1).
    let weights: Vec<f64> = patterns
        .iter()
        .map(|p| spec.join_size_decay.powi(p.len() as i32 - 1))
        .collect();
    let total: f64 = weights.iter().sum();
    (0..count)
        .map(|_| {
            let mut u = rng.random_range(0.0..total);
            let mut idx = patterns.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    idx = i;
                    break;
                }
                u -= w;
            }
            random_query_for_pattern(ds, spec, rng, &patterns[idx])
        })
        .collect()
}

/// Generates a random query over a fixed, connected table pattern.
pub fn random_query_for_pattern(
    ds: &Dataset,
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    pattern: &[usize],
) -> Query {
    let attrs: Vec<(usize, usize)> = ds
        .schema
        .attributes()
        .into_iter()
        .filter(|(t, _)| pattern.contains(t))
        .collect();
    let mut predicates = Vec::new();
    if !attrs.is_empty() {
        let n_preds = rng.random_range(1..=spec.max_predicates.min(attrs.len()));
        // Sample attributes without replacement.
        let mut pool = attrs;
        for _ in 0..n_preds {
            let i = rng.random_range(0..pool.len());
            let (t, c) = pool.swap_remove(i);
            predicates.push(random_predicate(ds, spec, rng, t, c));
        }
    }
    Query::new(pattern.to_vec(), predicates)
}

/// Generates one range predicate over a specific attribute.
pub fn random_predicate(
    ds: &Dataset,
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    table: usize,
    col: usize,
) -> Predicate {
    let stats = ds.col_stats(table, col);
    let center = if spec.center_on_data {
        ds.sample_value(rng, table, col)
    } else {
        rng.random_range(stats.min..=stats.max.max(stats.min))
    };
    let (w_lo, w_hi) = spec.width_range;
    let frac = (w_lo.ln() + rng.random_range(0.0f64..1.0) * (w_hi.ln() - w_lo.ln())).exp();
    let half = ((stats.width() as f64 * frac) / 2.0).ceil() as i64;
    Predicate {
        table,
        col,
        lo: (center - half).max(stats.min),
        hi: (center + half).min(stats.max),
    }
}

/// Generates `count` queries knowing only the schema shape — the attacker's
/// generation path (no access to table data; predicate centers are uniform
/// over each attribute's public domain).
pub fn generate_queries_schema_only(
    encoder: &QueryEncoder,
    patterns: &[Vec<usize>],
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    count: usize,
) -> Vec<Query> {
    assert!(!patterns.is_empty(), "no join patterns supplied");
    let weights: Vec<f64> = patterns
        .iter()
        .map(|p| spec.join_size_decay.powi(p.len() as i32 - 1))
        .collect();
    let total: f64 = weights.iter().sum();
    (0..count)
        .map(|_| {
            let mut u = rng.random_range(0.0..total);
            let mut idx = patterns.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    idx = i;
                    break;
                }
                u -= w;
            }
            schema_only_query_for_pattern(encoder, spec, rng, &patterns[idx])
        })
        .collect()
}

/// Schema-only random query over a fixed pattern (see
/// [`generate_queries_schema_only`]).
pub fn schema_only_query_for_pattern(
    encoder: &QueryEncoder,
    spec: &WorkloadSpec,
    rng: &mut impl Rng,
    pattern: &[usize],
) -> Query {
    let attrs: Vec<usize> = encoder
        .attributes()
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| pattern.contains(t))
        .map(|(i, _)| i)
        .collect();
    let mut predicates = Vec::new();
    if !attrs.is_empty() {
        let n_preds = rng.random_range(1..=spec.max_predicates.min(attrs.len()));
        let mut pool = attrs;
        for _ in 0..n_preds {
            let k = rng.random_range(0..pool.len());
            let i = pool.swap_remove(k);
            let (t, c) = encoder.attributes()[i];
            let stats = encoder.attr_stats(i);
            let center: f64 = rng.random_range(0.0..1.0);
            let (w_lo, w_hi) = spec.width_range;
            let frac = (w_lo.ln() + rng.random_range(0.0f64..1.0) * (w_hi.ln() - w_lo.ln())).exp();
            let lo = (center - frac / 2.0).max(0.0);
            let hi = (center + frac / 2.0).min(1.0);
            predicates.push(Predicate {
                table: t,
                col: c,
                lo: stats.denormalize(lo),
                hi: stats.denormalize(hi),
            });
        }
    }
    Query::new(pattern.to_vec(), predicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_queries_are_valid() {
        for kind in DatasetKind::all() {
            let ds = build(kind, Scale::tiny(), 5);
            let mut rng = StdRng::seed_from_u64(1);
            let spec = WorkloadSpec::default();
            for q in generate_queries(&ds, &spec, &mut rng, 200) {
                assert!(
                    q.is_valid(&ds.schema),
                    "invalid query on {}: {q:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn join_sizes_vary_and_respect_max() {
        let ds = build(DatasetKind::Imdb, Scale::tiny(), 5);
        let mut rng = StdRng::seed_from_u64(2);
        let spec = WorkloadSpec {
            max_join_tables: 3,
            ..WorkloadSpec::default()
        };
        let qs = generate_queries(&ds, &spec, &mut rng, 300);
        assert!(qs.iter().all(|q| q.tables.len() <= 3));
        assert!(qs.iter().any(|q| q.tables.len() == 1));
        assert!(qs.iter().any(|q| q.tables.len() > 1));
    }

    #[test]
    fn single_table_spec_never_joins() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 5);
        let mut rng = StdRng::seed_from_u64(3);
        let qs = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, 50);
        assert!(qs.iter().all(|q| q.tables == vec![0]));
        assert!(qs.iter().all(|q| !q.predicates.is_empty()));
    }

    #[test]
    fn predicates_within_domain() {
        let ds = build(DatasetKind::Stats, Scale::tiny(), 5);
        let mut rng = StdRng::seed_from_u64(4);
        for q in generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 200) {
            for p in &q.predicates {
                let s = ds.col_stats(p.table, p.col);
                assert!(p.lo >= s.min && p.hi <= s.max && p.lo <= p.hi);
            }
        }
    }

    #[test]
    fn schema_only_queries_are_valid() {
        let ds = build(DatasetKind::Imdb, Scale::tiny(), 5);
        let encoder = QueryEncoder::new(&ds);
        let patterns = ds.schema.connected_patterns(3);
        let mut rng = StdRng::seed_from_u64(6);
        let qs = generate_queries_schema_only(
            &encoder,
            &patterns,
            &WorkloadSpec::default(),
            &mut rng,
            150,
        );
        for q in qs {
            assert!(q.is_valid(&ds.schema), "invalid schema-only query {q:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 5);
        let spec = WorkloadSpec::default();
        let a = generate_queries(&ds, &spec, &mut StdRng::seed_from_u64(9), 20);
        let b = generate_queries(&ds, &spec, &mut StdRng::seed_from_u64(9), 20);
        assert_eq!(a, b);
    }
}
