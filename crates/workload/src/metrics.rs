//! Attack-evaluation metrics (paper Section 2.2): Q-error with percentile
//! summaries, and Jensen–Shannon divergence between query-encoding
//! distributions (the "normality" of poisoning queries).

/// Q-error of an estimate against the truth:
/// `max(est/true, true/est) ≥ 1`. Both sides are floored at 1 tuple, matching
/// the paper's setup where zero-cardinality queries are eliminated.
pub fn q_error(est: f64, truth: f64) -> f64 {
    let e = est.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Summary statistics of a Q-error sample: mean, median, and the tail
/// percentiles the paper reports (90th/95th/99th/max).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QErrorSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl QErrorSummary {
    /// Computes the summary of a non-empty sample.
    ///
    /// Percentiles use the **nearest-rank** convention (`⌈p·n⌉`-th smallest
    /// value), the definition the paper's tail statistics assume. The
    /// previously used round-to-nearest index inflated tail percentiles on
    /// small samples — with n < ~67 it collapsed p99 to the maximum.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "QErrorSummary of empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN q-errors"));
        let n = sorted.len();
        let pct = |p: f64| -> f64 {
            let rank = (p * n as f64).ceil() as usize;
            sorted[rank.clamp(1, n) - 1]
        };
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Jensen–Shannon divergence between two distributions of encoded queries.
///
/// Each encoding dimension is histogrammed into `bins` buckets over `[0, 1]`
/// and the per-dimension JS divergences (natural log) are averaged. Returns a
/// value in `[0, ln 2]`; 0 means identical distributions.
///
/// Non-finite encoding values (NaN/±Inf) carry **no probability mass**: they
/// are skipped when histogramming, and a dimension where either sample has no
/// finite values at all is excluded from the average. The alternative —
/// clamping them into a boundary bin, as an earlier version did — let a
/// batch of NaN encodings masquerade as a maximally concentrated (and
/// therefore maximally divergent-looking) distribution.
///
/// # Panics
/// Panics when either sample is empty, widths differ, or no dimension has
/// finite values on both sides.
pub fn js_divergence(a: &[Vec<f32>], b: &[Vec<f32>], bins: usize) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "js_divergence of empty sample"
    );
    let dim = a[0].len();
    assert!(
        a.iter().chain(b).all(|v| v.len() == dim),
        "encoding width mismatch"
    );
    assert!(bins >= 2);
    // `None` when the dimension holds no finite values in this sample.
    let hist = |sample: &[Vec<f32>], d: usize| -> Option<Vec<f64>> {
        let mut h = vec![0.0f64; bins];
        for v in sample {
            if !v[d].is_finite() {
                continue;
            }
            let x = f64::from(v[d].clamp(0.0, 1.0));
            let i = ((x * bins as f64) as usize).min(bins - 1);
            h[i] += 1.0;
        }
        let total: f64 = h.iter().sum();
        if total == 0.0 {
            return None;
        }
        for x in &mut h {
            *x /= total;
        }
        Some(h)
    };
    let kl = |p: &[f64], q: &[f64]| -> f64 {
        p.iter()
            .zip(q)
            .filter(|(pi, _)| **pi > 0.0)
            .map(|(pi, qi)| pi * (pi / qi).ln())
            .sum()
    };
    let mut total = 0.0;
    let mut dims = 0usize;
    for d in 0..dim {
        let (Some(p), Some(q)) = (hist(a, d), hist(b, d)) else {
            continue;
        };
        let m: Vec<f64> = p.iter().zip(&q).map(|(x, y)| 0.5 * (x + y)).collect();
        total += 0.5 * kl(&p, &m) + 0.5 * kl(&q, &m);
        dims += 1;
    }
    assert!(dims > 0, "js_divergence: no dimension has finite values");
    total / dims as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(5.0, 5.0), 1.0);
        // Sub-tuple estimates floored at 1.
        assert_eq!(q_error(0.001, 10.0), 10.0);
        assert_eq!(q_error(10.0, 0.0), 10.0);
    }

    #[test]
    fn summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = QErrorSummary::from_samples(&samples);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert!((s.median - 50.0).abs() <= 1.0);
    }

    // Regression: round-to-nearest indexing (`((n-1)·p).round()`) pulled
    // small-sample percentiles one rank high — the n=4 median came back as
    // the 3rd value and p99 collapsed to max for every n below ~67.
    // Nearest-rank (`⌈p·n⌉`-th smallest) is the paper's convention.
    #[test]
    fn summary_uses_nearest_rank() {
        let s = QErrorSummary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median, 2.0, "median of 4 samples is the 2nd smallest");
        assert_eq!(s.p90, 4.0);

        let samples: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = QErrorSummary::from_samples(&samples);
        assert_eq!(s.median, 5.0, "median of 10 samples is the 5th smallest");
        assert_eq!(s.p90, 9.0, "p90 of 10 samples is the 9th, not the max");
        assert_eq!(s.p99, 10.0);

        // Single sample: every percentile is that sample.
        let s = QErrorSummary::from_samples(&[7.0]);
        assert_eq!((s.median, s.p90, s.p99, s.max), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        let _ = QErrorSummary::from_samples(&[]);
    }

    #[test]
    fn js_zero_for_identical() {
        let a: Vec<Vec<f32>> = (0..100).map(|i| vec![(i % 10) as f32 / 10.0]).collect();
        let d = js_divergence(&a, &a, 10);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn js_maximal_for_disjoint() {
        let a: Vec<Vec<f32>> = (0..100).map(|_| vec![0.05f32]).collect();
        let b: Vec<Vec<f32>> = (0..100).map(|_| vec![0.95f32]).collect();
        let d = js_divergence(&a, &b, 10);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-9, "d = {d}");
    }

    // Regression: non-finite encodings used to be clamped into a boundary
    // bin (NaN → bin 0), so a half-NaN sample looked maximally far from an
    // identical finite sample. They must carry no mass instead.
    #[test]
    fn js_skips_non_finite_values() {
        let a: Vec<Vec<f32>> = (0..100).map(|_| vec![0.95f32]).collect();
        let mut b = a.clone();
        for v in b.iter_mut().take(50) {
            v[0] = f32::NAN;
        }
        let d = js_divergence(&a, &b, 10);
        assert!(
            d.abs() < 1e-12,
            "NaN entries must not contribute mass, got {d}"
        );
        // +Inf used to land in the top bin; it must be skipped too.
        let c: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![if i % 2 == 0 { 0.95 } else { f32::INFINITY }])
            .collect();
        let d = js_divergence(&a, &c, 10);
        assert!(d.abs() < 1e-12, "Inf entries must not contribute, got {d}");
        // A dimension that is non-finite on one side is excluded from the
        // average; finite dimensions still count.
        let x = vec![vec![f32::NAN, 0.15f32]; 50];
        let y = vec![vec![0.5f32, 0.15f32]; 50];
        let d = js_divergence(&x, &y, 10);
        assert!(d.abs() < 1e-12, "dead dimension must be excluded, got {d}");
    }

    #[test]
    #[should_panic(expected = "no dimension has finite values")]
    fn js_all_non_finite_panics() {
        let a = vec![vec![f32::NAN]; 3];
        let b = vec![vec![0.5f32]; 3];
        let _ = js_divergence(&a, &b, 4);
    }

    #[test]
    fn js_monotone_in_overlap() {
        let a: Vec<Vec<f32>> = (0..200).map(|i| vec![(i % 100) as f32 / 100.0]).collect();
        let near: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![((i + 5) % 100) as f32 / 100.0])
            .collect();
        let far: Vec<Vec<f32>> = (0..200).map(|i| vec![((i % 50) as f32) / 100.0]).collect();
        let d_near = js_divergence(&a, &near, 10);
        let d_far = js_divergence(&a, &far, 10);
        assert!(d_near < d_far, "near {d_near} !< far {d_far}");
    }
}
