//! Attack-evaluation metrics (paper Section 2.2): Q-error with percentile
//! summaries, and Jensen–Shannon divergence between query-encoding
//! distributions (the "normality" of poisoning queries).

/// Q-error of an estimate against the truth:
/// `max(est/true, true/est) ≥ 1`. Both sides are floored at 1 tuple, matching
/// the paper's setup where zero-cardinality queries are eliminated.
pub fn q_error(est: f64, truth: f64) -> f64 {
    let e = est.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Summary statistics of a Q-error sample: mean, median, and the tail
/// percentiles the paper reports (90th/95th/99th/max).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QErrorSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl QErrorSummary {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "QErrorSummary of empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN q-errors"));
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Jensen–Shannon divergence between two distributions of encoded queries.
///
/// Each encoding dimension is histogrammed into `bins` buckets over `[0, 1]`
/// and the per-dimension JS divergences (natural log) are averaged. Returns a
/// value in `[0, ln 2]`; 0 means identical distributions.
///
/// # Panics
/// Panics when either sample is empty or widths differ.
pub fn js_divergence(a: &[Vec<f32>], b: &[Vec<f32>], bins: usize) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "js_divergence of empty sample"
    );
    let dim = a[0].len();
    assert!(
        a.iter().chain(b).all(|v| v.len() == dim),
        "encoding width mismatch"
    );
    assert!(bins >= 2);
    let hist = |sample: &[Vec<f32>], d: usize| -> Vec<f64> {
        let mut h = vec![0.0f64; bins];
        for v in sample {
            let x = v[d].clamp(0.0, 1.0) as f64;
            let i = ((x * bins as f64) as usize).min(bins - 1);
            h[i] += 1.0;
        }
        let total: f64 = h.iter().sum();
        for x in &mut h {
            *x /= total;
        }
        h
    };
    let kl = |p: &[f64], q: &[f64]| -> f64 {
        p.iter()
            .zip(q)
            .filter(|(pi, _)| **pi > 0.0)
            .map(|(pi, qi)| pi * (pi / qi).ln())
            .sum()
    };
    let mut total = 0.0;
    for d in 0..dim {
        let p = hist(a, d);
        let q = hist(b, d);
        let m: Vec<f64> = p.iter().zip(&q).map(|(x, y)| 0.5 * (x + y)).collect();
        total += 0.5 * kl(&p, &m) + 0.5 * kl(&q, &m);
    }
    total / dim as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(5.0, 5.0), 1.0);
        // Sub-tuple estimates floored at 1.
        assert_eq!(q_error(0.001, 10.0), 10.0);
        assert_eq!(q_error(10.0, 0.0), 10.0);
    }

    #[test]
    fn summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = QErrorSummary::from_samples(&samples);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert!((s.median - 50.0).abs() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        let _ = QErrorSummary::from_samples(&[]);
    }

    #[test]
    fn js_zero_for_identical() {
        let a: Vec<Vec<f32>> = (0..100).map(|i| vec![(i % 10) as f32 / 10.0]).collect();
        let d = js_divergence(&a, &a, 10);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn js_maximal_for_disjoint() {
        let a: Vec<Vec<f32>> = (0..100).map(|_| vec![0.05f32]).collect();
        let b: Vec<Vec<f32>> = (0..100).map(|_| vec![0.95f32]).collect();
        let d = js_divergence(&a, &b, 10);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn js_monotone_in_overlap() {
        let a: Vec<Vec<f32>> = (0..200).map(|i| vec![(i % 100) as f32 / 100.0]).collect();
        let near: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![((i + 5) % 100) as f32 / 100.0])
            .collect();
        let far: Vec<Vec<f32>> = (0..200).map(|i| vec![((i % 50) as f32) / 100.0]).collect();
        let d_near = js_divergence(&a, &near, 10);
        let d_far = js_divergence(&a, &far, 10);
        assert!(d_near < d_far, "near {d_near} !< far {d_far}");
    }
}
