//! Query ↔ vector encoding (paper Section 5.2, "Query Representation").
//!
//! A query over a schema with `T` tables and `A` global attributes becomes a
//! `T + 2A` vector: a binary table-membership prefix followed by normalized
//! `[lo, hi]` bound pairs per attribute in canonical order. Attributes that
//! are unconstrained — or whose table is absent from the join pattern — carry
//! the full range `[0, 1]`, exactly as the paper specifies.

use crate::query::{Predicate, Query};
use pace_data::{ColStats, Dataset};

/// Encodes queries of one dataset into fixed-width vectors and back.
#[derive(Clone, Debug)]
pub struct QueryEncoder {
    num_tables: usize,
    attrs: Vec<(usize, usize)>,
    stats: Vec<ColStats>,
}

impl QueryEncoder {
    /// Builds an encoder from a dataset's schema and column statistics.
    pub fn new(ds: &Dataset) -> Self {
        let attrs = ds.schema.attributes();
        let stats = attrs.iter().map(|&(t, c)| ds.col_stats(t, c)).collect();
        Self {
            num_tables: ds.schema.num_tables(),
            attrs,
            stats,
        }
    }

    /// Width of encoded vectors: `T + 2A`.
    pub fn dim(&self) -> usize {
        self.num_tables + 2 * self.attrs.len()
    }

    /// Number of tables (`T`, the join-prefix width).
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// The canonical attribute order `(table, column)`.
    pub fn attributes(&self) -> &[(usize, usize)] {
        &self.attrs
    }

    /// Statistics of the `i`-th canonical attribute.
    pub fn attr_stats(&self, i: usize) -> ColStats {
        self.stats[i]
    }

    /// Encodes a query to a `T + 2A` vector.
    pub fn encode(&self, q: &Query) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim()];
        for &t in &q.tables {
            v[t] = 1.0;
        }
        // Default bounds: full range.
        for i in 0..self.attrs.len() {
            v[self.num_tables + 2 * i] = 0.0;
            v[self.num_tables + 2 * i + 1] = 1.0;
        }
        for p in &q.predicates {
            if let Some(i) = self.attrs.iter().position(|&a| a == (p.table, p.col)) {
                let s = self.stats[i];
                v[self.num_tables + 2 * i] = s.normalize(p.lo) as f32;
                v[self.num_tables + 2 * i + 1] = s.normalize(p.hi) as f32;
            }
        }
        v
    }

    /// Decodes a vector back into a query.
    ///
    /// Join membership uses the paper's 0.5 threshold; bound pairs that cover
    /// (almost) the full range, belong to absent tables, or are inverted are
    /// dropped as "no predicate".
    pub fn decode(&self, v: &[f32]) -> Query {
        assert_eq!(v.len(), self.dim(), "encoded vector width mismatch");
        let tables: Vec<usize> = (0..self.num_tables).filter(|&t| v[t] > 0.5).collect();
        let mut predicates = Vec::new();
        for (i, &(t, c)) in self.attrs.iter().enumerate() {
            if !tables.contains(&t) {
                continue;
            }
            let lo_n = f64::from(v[self.num_tables + 2 * i]).clamp(0.0, 1.0);
            let hi_n = f64::from(v[self.num_tables + 2 * i + 1]).clamp(0.0, 1.0);
            if lo_n <= 0.002 && hi_n >= 0.998 {
                continue; // effectively unconstrained
            }
            if hi_n < lo_n {
                continue; // invalid pair — generator masking should prevent this
            }
            let s = self.stats[i];
            predicates.push(Predicate {
                table: t,
                col: c,
                lo: s.denormalize(lo_n),
                hi: s.denormalize(hi_n),
            });
        }
        Query::new(tables, predicates)
    }

    /// Splits an encoded vector into its join prefix and bounds suffix.
    pub fn split<'a>(&self, v: &'a [f32]) -> (&'a [f32], &'a [f32]) {
        v.split_at(self.num_tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};

    fn encoder() -> (Dataset, QueryEncoder) {
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 7);
        let enc = QueryEncoder::new(&ds);
        (ds, enc)
    }

    #[test]
    fn dim_is_t_plus_2a() {
        let (ds, enc) = encoder();
        assert_eq!(
            enc.dim(),
            ds.schema.num_tables() + 2 * ds.schema.num_attributes()
        );
    }

    #[test]
    fn encode_sets_join_bits_and_bounds() {
        let (ds, enc) = encoder();
        let cust = ds.schema.table("customer");
        let acct_col = ds.schema.tables[cust].col("c_acctbal");
        let stats = ds.col_stats(cust, acct_col);
        let q = Query::new(
            vec![cust],
            vec![Predicate {
                table: cust,
                col: acct_col,
                lo: stats.min,
                hi: stats.max,
            }],
        );
        let v = enc.encode(&q);
        assert_eq!(v[cust], 1.0);
        assert_eq!(v.iter().take(enc.num_tables()).sum::<f32>(), 1.0);
        // Full-range predicate encodes as [0, 1].
        let i = enc
            .attributes()
            .iter()
            .position(|&a| a == (cust, acct_col))
            .expect("customer account column is an encoded attribute");
        assert_eq!(v[enc.num_tables() + 2 * i], 0.0);
        assert_eq!(v[enc.num_tables() + 2 * i + 1], 1.0);
    }

    #[test]
    fn unconstrained_attrs_encode_full_range() {
        let (_, enc) = encoder();
        let q = Query::new(vec![0], vec![]);
        let v = enc.encode(&q);
        for i in 0..enc.attributes().len() {
            assert_eq!(v[enc.num_tables() + 2 * i], 0.0);
            assert_eq!(v[enc.num_tables() + 2 * i + 1], 1.0);
        }
    }

    #[test]
    fn decode_roundtrips_constrained_query() {
        let (ds, enc) = encoder();
        let cust = ds.schema.table("customer");
        let acct = ds.schema.tables[cust].col("c_acctbal");
        let s = ds.col_stats(cust, acct);
        let lo = s.denormalize(0.25);
        let hi = s.denormalize(0.75);
        let q = Query::new(
            vec![cust],
            vec![Predicate {
                table: cust,
                col: acct,
                lo,
                hi,
            }],
        );
        let rt = enc.decode(&enc.encode(&q));
        assert_eq!(rt.tables, q.tables);
        assert_eq!(rt.predicates.len(), 1);
        let p = rt.predicates[0];
        // Round-trip through normalization loses at most one domain step.
        assert!((p.lo - lo).abs() <= 1 + s.width() / 1000);
        assert!((p.hi - hi).abs() <= 1 + s.width() / 1000);
    }

    #[test]
    fn decode_drops_full_range_and_absent_table_predicates() {
        let (ds, enc) = encoder();
        let cust = ds.schema.table("customer");
        let q = Query::new(vec![cust], vec![]);
        let mut v = enc.encode(&q);
        // Constrain an attribute of a table that is NOT in the pattern.
        let other = enc
            .attributes()
            .iter()
            .position(|&(t, _)| t != cust)
            .expect("another table's attribute exists");
        v[enc.num_tables() + 2 * other] = 0.4;
        v[enc.num_tables() + 2 * other + 1] = 0.6;
        let rt = enc.decode(&v);
        assert!(rt.predicates.is_empty());
        assert_eq!(rt.tables, vec![cust]);
    }
}
