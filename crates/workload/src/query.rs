//! The SPJ query model.
//!
//! A query is a connected set of tables (its join pattern — the join
//! predicate is the one induced by the schema's PK–FK tree) plus inclusive
//! range predicates over attributes of those tables. This is the query class
//! every query-driven CE model in the paper supports.

use pace_data::Schema;

/// An inclusive range predicate `lo ≤ table.col ≤ hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Predicate {
    /// Table index in the schema.
    pub table: usize,
    /// Column index within the table.
    pub col: usize,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// A select-project-join query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// Sorted table indices forming a connected join pattern.
    pub tables: Vec<usize>,
    /// Range predicates; every predicate's table must appear in `tables`.
    pub predicates: Vec<Predicate>,
}

impl Query {
    /// Creates a query, normalizing table order.
    pub fn new(mut tables: Vec<usize>, predicates: Vec<Predicate>) -> Self {
        tables.sort_unstable();
        tables.dedup();
        Self { tables, predicates }
    }

    /// Whether the query is well-formed against `schema`: non-empty connected
    /// pattern, predicates on in-pattern attribute columns, ordered bounds.
    pub fn is_valid(&self, schema: &Schema) -> bool {
        if !schema.is_connected(&self.tables) {
            return false;
        }
        let attrs = schema.attributes();
        self.predicates.iter().all(|p| {
            self.tables.contains(&p.table) && p.lo <= p.hi && attrs.contains(&(p.table, p.col))
        })
    }

    /// The predicates that apply to one table.
    pub fn predicates_on(&self, table: usize) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(move |p| p.table == table)
    }

    /// True when the query touches a single table.
    pub fn is_single_table(&self) -> bool {
        self.tables.len() == 1
    }
}

/// A query paired with its true cardinality.
#[derive(Clone, PartialEq, Debug)]
pub struct LabeledQuery {
    /// The query.
    pub query: Query,
    /// Exact `COUNT(*)` result.
    pub cardinality: u64,
}

/// A set of labeled queries (training workload, test workload, …).
pub type Workload = Vec<LabeledQuery>;

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::schema::{table, JoinEdge};

    fn schema() -> Schema {
        Schema::new(
            "s",
            vec![
                table("a", &["id"], &[], &["x"]),
                table("b", &["id"], &["a_id"], &["y"]),
            ],
            vec![JoinEdge {
                left: (0, 0),
                right: (1, 1),
            }],
        )
    }

    #[test]
    fn new_sorts_and_dedups() {
        let q = Query::new(vec![1, 0, 1], vec![]);
        assert_eq!(q.tables, vec![0, 1]);
    }

    #[test]
    fn validity_checks() {
        let s = schema();
        let ok = Query::new(
            vec![0, 1],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 0,
                hi: 5,
            }],
        );
        assert!(ok.is_valid(&s));
        // Predicate on a table not in the pattern.
        let bad = Query::new(
            vec![0],
            vec![Predicate {
                table: 1,
                col: 2,
                lo: 0,
                hi: 5,
            }],
        );
        assert!(!bad.is_valid(&s));
        // Reversed bounds.
        let bad = Query::new(
            vec![0],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 5,
                hi: 0,
            }],
        );
        assert!(!bad.is_valid(&s));
        // Predicate on a key column.
        let bad = Query::new(
            vec![0],
            vec![Predicate {
                table: 0,
                col: 0,
                lo: 0,
                hi: 5,
            }],
        );
        assert!(!bad.is_valid(&s));
        // Empty pattern.
        assert!(!Query::new(vec![], vec![]).is_valid(&s));
    }

    #[test]
    fn predicates_on_filters_by_table() {
        let q = Query::new(
            vec![0, 1],
            vec![
                Predicate {
                    table: 0,
                    col: 1,
                    lo: 0,
                    hi: 1,
                },
                Predicate {
                    table: 1,
                    col: 2,
                    lo: 2,
                    hi: 3,
                },
            ],
        );
        assert_eq!(q.predicates_on(1).count(), 1);
        assert_eq!(
            q.predicates_on(0)
                .next()
                .expect("table 0 has a predicate")
                .hi,
            1
        );
    }
}
