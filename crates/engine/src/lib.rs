//! `pace-engine` — the in-memory SPJ query engine underneath the attack.
//!
//! Three responsibilities:
//!
//! * **Exact counting** ([`Executor`]): the attacker's `COUNT(*)` oracle and
//!   the source of training labels. Acyclic join graphs let a weighted
//!   semi-join aggregation produce exact join cardinalities in `O(rows)`.
//! * **Optimization** ([`optimize`]): left-deep DP join ordering under the
//!   `C_out` cost model, parameterized by any [`CardEstimator`] — learned or
//!   oracle.
//! * **Cost-simulated execution** ([`run_query`], [`total_latency`]): charges
//!   a chosen plan its *true* intermediate cardinalities, reproducing how
//!   cardinality misestimates degrade end-to-end latency (paper Table 5).
//! * **Traditional estimators** ([`HistogramEstimator`],
//!   [`SamplingEstimator`]): the pre-learned-CE baselines the paper motivates
//!   against — and, because they never train on queries, the natural control
//!   group for poisoning experiments.
//!
//! # Example
//!
//! ```
//! use pace_data::{build, DatasetKind, Scale};
//! use pace_engine::{Executor, OracleEstimator, run_query, CostModel};
//! use pace_workload::Query;
//!
//! let ds = build(DatasetKind::Tpch, Scale::tiny(), 1);
//! let exec = Executor::new(&ds);
//! let q = Query::new(vec![ds.schema.table("orders"), ds.schema.table("lineitem")], vec![]);
//! let truth = exec.count(&q);
//! let est = OracleEstimator::new(Executor::new(&ds));
//! let report = run_query(&q, &exec, &est, &CostModel::default());
//! assert!(report.true_work >= truth as f64);
//! ```

#![warn(missing_docs)]

mod count;
mod estimator;
mod exec;
mod optimizer;
mod traditional;

pub use count::{ln_max_cardinality, naive_count, Executor};
pub use estimator::{CardEstimator, OracleEstimator, ScaledEstimator};
pub use exec::{run_plan, run_query, total_latency, CostModel, ExecutionReport};
pub use optimizer::{optimize, JoinOp, Plan, INDEX_LOOKUP_COST};
pub use traditional::{HistogramEstimator, SamplingEstimator};
