//! Cost-simulated end-to-end execution (paper Section 7.3's E2E latency).
//!
//! A plan chosen by the optimizer — possibly under a *poisoned* estimator —
//! is "executed" by charging the plan's true work: the sum of the exact
//! cardinalities of every intermediate result it materializes, plus a
//! per-join overhead. This reproduces the causal chain of the paper's E2E
//! experiment (bad estimates → bad join orders → more tuples processed)
//! without a full PostgreSQL testbed; see DESIGN.md ("Substitutions").

use crate::count::Executor;
use crate::estimator::CardEstimator;
use crate::optimizer::{optimize, JoinOp, Plan, INDEX_LOOKUP_COST};
use pace_workload::Query;

/// Converts work units (tuples processed) into simulated seconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Seconds charged per tuple of any intermediate (or scanned) result.
    pub tuple_cost_s: f64,
    /// Fixed overhead per join operator.
    pub join_overhead_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            tuple_cost_s: 1e-4,
            join_overhead_s: 2e-3,
        }
    }
}

/// Outcome of simulating one query.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// The join order executed.
    pub order: Vec<usize>,
    /// Cost the optimizer *believed* the plan had.
    pub est_cost: f64,
    /// True work: Σ exact cardinalities of every plan prefix.
    pub true_work: f64,
    /// Simulated wall-clock seconds.
    pub latency_s: f64,
}

/// Plans `q` under `est` and simulates execution against the true data.
pub fn run_query(
    q: &Query,
    exec: &Executor<'_>,
    est: &dyn CardEstimator,
    cost: &CostModel,
) -> ExecutionReport {
    let plan = optimize(q, &exec.dataset().schema, est);
    run_plan(q, exec, &plan, cost)
}

/// Simulates a specific plan for `q` against the true data: each join step
/// is charged its operator's true input work plus its true output size.
pub fn run_plan(q: &Query, exec: &Executor<'_>, plan: &Plan, cost: &CostModel) -> ExecutionReport {
    // First table: scan of the filtered relation.
    let mut true_work = exec.count_subset(q, &plan.order[..1]) as f64;
    let mut outer = true_work;
    for k in 2..=plan.order.len() {
        let inner = exec.filtered_size(q, plan.order[k - 1]) as f64;
        let out = exec.count_subset(q, &plan.order[..k]) as f64;
        let op = plan.ops.get(k - 2).copied().unwrap_or(JoinOp::Hash);
        true_work += match op {
            JoinOp::Hash => outer + inner + out,
            JoinOp::IndexNestedLoop => outer * INDEX_LOOKUP_COST + out,
        };
        outer = out;
    }
    let joins = plan.order.len().saturating_sub(1) as f64;
    ExecutionReport {
        order: plan.order.clone(),
        est_cost: plan.est_cost,
        true_work,
        latency_s: true_work * cost.tuple_cost_s + joins * cost.join_overhead_s,
    }
}

/// Total simulated latency of a workload under one estimator — the number the
/// paper's Table 5 reports per CE model and attack method.
pub fn total_latency(
    queries: &[Query],
    exec: &Executor<'_>,
    est: &dyn CardEstimator,
    cost: &CostModel,
) -> f64 {
    queries
        .iter()
        .map(|q| run_query(q, exec, est, cost).latency_s)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OracleEstimator;
    use pace_data::schema::{table as tdef, JoinEdge};
    use pace_data::{Dataset, Schema, Table};
    use pace_workload::Query;

    /// A star where joining the selective satellite first is much cheaper.
    fn dataset() -> Dataset {
        let schema = Schema::new(
            "star",
            vec![
                tdef("hub", &["id"], &[], &["h"]),
                tdef("big", &["id"], &["hub_id"], &["a"]),
                tdef("small", &["id"], &["hub_id"], &["b"]),
            ],
            vec![
                JoinEdge {
                    left: (1, 1),
                    right: (0, 0),
                },
                JoinEdge {
                    left: (2, 1),
                    right: (0, 0),
                },
            ],
        );
        let hub_n = 50usize;
        let hub = Table::from_columns(vec![
            (0..hub_n as i64).collect(),
            (0..hub_n as i64).map(|x| x % 10).collect(),
        ]);
        // big: 20 rows per hub row (hub⋈big = 1000); small: only hub row 0 (hub⋈small = 2).
        let big_n = hub_n * 20;
        let big = Table::from_columns(vec![
            (0..big_n as i64).collect(),
            (0..big_n as i64).map(|x| x % hub_n as i64).collect(),
            (0..big_n as i64).map(|x| x % 7).collect(),
        ]);
        let small = Table::from_columns(vec![vec![0, 1], vec![0, 0], vec![1, 2]]);
        Dataset::new(schema, vec![hub, big, small])
    }

    #[test]
    fn oracle_plans_selective_join_first() {
        let ds = dataset();
        let exec = Executor::new(&ds);
        let est = OracleEstimator::new(Executor::new(&ds));
        let q = Query::new(vec![0, 1, 2], vec![]);
        let report = run_query(&q, &exec, &est, &CostModel::default());
        // hub ⋈ small (2 rows) must come before big.
        assert_eq!(
            *report.order.last().expect("3 tables"),
            1,
            "order {:?}",
            report.order
        );
    }

    #[test]
    fn bad_estimates_cost_more_true_work() {
        let ds = dataset();
        let exec = Executor::new(&ds);
        let est = OracleEstimator::new(Executor::new(&ds));
        let q = Query::new(vec![0, 1, 2], vec![]);
        let good = run_query(&q, &exec, &est, &CostModel::default());

        // An adversarial estimator that inverts the oracle's preferences:
        // claims hub⋈small is huge and hub⋈big is tiny.
        struct Inverted<'a>(OracleEstimator<'a>);
        impl CardEstimator for Inverted<'_> {
            fn estimate(&self, q: &Query) -> f64 {
                let truth = self.0.estimate(q);
                if q.tables.len() >= 2 {
                    1e6 / truth.max(1.0)
                } else {
                    truth
                }
            }
        }
        let bad = run_query(
            &q,
            &exec,
            &Inverted(OracleEstimator::new(Executor::new(&ds))),
            &CostModel::default(),
        );
        assert!(
            bad.true_work > good.true_work,
            "bad plan should cost more: {} vs {}",
            bad.true_work,
            good.true_work
        );
        assert!(bad.latency_s > good.latency_s);
    }

    #[test]
    fn true_work_charges_operator_inputs_and_output() {
        let ds = dataset();
        let exec = Executor::new(&ds);
        let est = OracleEstimator::new(Executor::new(&ds));
        let q = Query::new(vec![0, 2], vec![]);
        let plan = optimize(&q, &ds.schema, &est);
        let report = run_plan(&q, &exec, &plan, &CostModel::default());
        let first = exec.count_subset(&q, &plan.order[..1]) as f64;
        let inner = exec.filtered_size(&q, plan.order[1]) as f64;
        let expected = match plan.ops[0] {
            JoinOp::Hash => first + (first + inner + 2.0),
            JoinOp::IndexNestedLoop => first + (first * INDEX_LOOKUP_COST + 2.0),
        };
        assert_eq!(report.true_work, expected);
    }

    #[test]
    fn total_latency_accumulates() {
        let ds = dataset();
        let exec = Executor::new(&ds);
        let est = OracleEstimator::new(Executor::new(&ds));
        let q1 = Query::new(vec![0], vec![]);
        let q2 = Query::new(vec![0, 2], vec![]);
        let cost = CostModel::default();
        let total = total_latency(&[q1.clone(), q2.clone()], &exec, &est, &cost);
        let a = run_query(&q1, &exec, &est, &cost).latency_s;
        let b = run_query(&q2, &exec, &est, &cost).latency_s;
        assert!((total - (a + b)).abs() < 1e-12);
    }
}
