//! The estimator interface the optimizer consumes.

use crate::count::Executor;
use pace_workload::Query;

/// Anything that can estimate the cardinality of an SPJ query.
///
/// Implemented by the learned CE models (`pace-ce`) and by the oracle below.
pub trait CardEstimator {
    /// Estimated number of result tuples (≥ 0; the optimizer floors at 1).
    fn estimate(&self, q: &Query) -> f64;
}

/// A perfect estimator backed by the exact-count executor; the "Clean
/// optimizer" upper bound in end-to-end comparisons.
pub struct OracleEstimator<'a> {
    exec: Executor<'a>,
}

impl<'a> OracleEstimator<'a> {
    /// Wraps an executor.
    pub fn new(exec: Executor<'a>) -> Self {
        Self { exec }
    }
}

impl CardEstimator for OracleEstimator<'_> {
    fn estimate(&self, q: &Query) -> f64 {
        self.exec.count(q) as f64
    }
}

/// An estimator with fixed multiplicative error, used by optimizer tests to
/// verify that bad estimates change plan choice.
pub struct ScaledEstimator<'a> {
    inner: &'a dyn CardEstimator,
    /// Multiplier applied to the inner estimate.
    pub factor: f64,
}

impl<'a> ScaledEstimator<'a> {
    /// Wraps `inner`, scaling every estimate by `factor`.
    pub fn new(inner: &'a dyn CardEstimator, factor: f64) -> Self {
        Self { inner, factor }
    }
}

impl CardEstimator for ScaledEstimator<'_> {
    fn estimate(&self, q: &Query) -> f64 {
        self.inner.estimate(q) * self.factor
    }
}
