//! Exact `COUNT(*)` of filtered SPJ queries.
//!
//! All schemas in this reproduction have acyclic (forest) join graphs, so the
//! cardinality of a filtered join is computed by a bottom-up weighted
//! semi-join aggregation over the pattern-induced join tree:
//!
//! * every row starts with weight 1 if it passes the table's predicates,
//!   else 0;
//! * a child table is folded into its parent by summing child weights per
//!   join value and multiplying each parent row's weight by the sum matching
//!   its join key;
//! * the query cardinality is the weight sum at the root.
//!
//! One query costs `O(Σ pattern table rows)` — no materialization, exact
//! counts. This implements both the attacker's `COUNT(*)` oracle and the true
//! intermediate-size oracle of the execution simulator.

use pace_data::Dataset;
use pace_runtime as pool;
use pace_workload::{LabeledQuery, Query, Workload};
use std::collections::HashMap;

/// Exact-count executor over one dataset.
pub struct Executor<'a> {
    ds: &'a Dataset,
    adj: Vec<Vec<(usize, usize)>>,
    /// Unfiltered per-value row counts for every join-edge endpoint
    /// `(table, column)`, accumulated in row order. Shared by every query in
    /// a batch: a semi-join fold whose child has no predicates and no further
    /// pattern children reads these sums instead of rescanning the child.
    edge_sums: HashMap<(usize, usize), HashMap<i64, f64>>,
}

impl<'a> Executor<'a> {
    /// Creates an executor (precomputes join-graph adjacency and the
    /// unfiltered group-by sums of every join-edge endpoint).
    pub fn new(ds: &'a Dataset) -> Self {
        let mut edge_sums: HashMap<(usize, usize), HashMap<i64, f64>> = HashMap::new();
        for edge in &ds.schema.edges {
            for (table, col) in [edge.left, edge.right] {
                edge_sums.entry((table, col)).or_insert_with(|| {
                    let mut sums: HashMap<i64, f64> = HashMap::new();
                    for &v in ds.tables[table].col(col) {
                        *sums.entry(v).or_insert(0.0) += 1.0;
                    }
                    sums
                });
            }
        }
        Self {
            ds,
            adj: ds.schema.adjacency(),
            edge_sums,
        }
    }

    /// The dataset this executor reads.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// Exact cardinality of `q`.
    ///
    /// # Panics
    /// Panics when the query's pattern is empty or not connected (invalid
    /// queries should be filtered before execution).
    pub fn count(&self, q: &Query) -> u64 {
        assert!(
            self.ds.schema.is_connected(&q.tables),
            "count over a disconnected pattern {:?}",
            q.tables
        );
        let root = q.tables[0];
        let w = self.subtree_weights(q, root, usize::MAX);
        w.iter().sum::<f64>().round() as u64
    }

    /// Weights of `table`'s rows after folding in all pattern children on the
    /// far side from `parent`.
    fn subtree_weights(&self, q: &Query, table: usize, parent: usize) -> Vec<f64> {
        let t = &self.ds.tables[table];
        let mut w = self.filter_mask(q, table);
        for &(neighbor, edge_idx) in &self.adj[table] {
            if neighbor == parent || !q.tables.contains(&neighbor) {
                continue;
            }
            let edge = self.ds.schema.edges[edge_idx];
            let (my_col, child_col) = if edge.left.0 == table {
                (edge.left.1, edge.right.1)
            } else {
                (edge.right.1, edge.left.1)
            };
            // A child with no predicates and no further pattern neighbors
            // contributes all-1 weights, so its fold is exactly the
            // precomputed unfiltered group-by sums. Both are accumulated in
            // row order (+1.0 per row), so the cached path is bit-identical
            // to the recomputed one.
            let trivial = q.predicates_on(neighbor).next().is_none()
                && self.adj[neighbor]
                    .iter()
                    .all(|&(nb, _)| nb == table || !q.tables.contains(&nb));
            let computed;
            let sums: &HashMap<i64, f64> = if trivial {
                &self.edge_sums[&(neighbor, child_col)]
            } else {
                let child_w = self.subtree_weights(q, neighbor, table);
                let child_vals = self.ds.tables[neighbor].col(child_col);
                let mut s: HashMap<i64, f64> = HashMap::new();
                for (r, &cw) in child_w.iter().enumerate() {
                    if cw > 0.0 {
                        *s.entry(child_vals[r]).or_insert(0.0) += cw;
                    }
                }
                computed = s;
                &computed
            };
            let my_vals = t.col(my_col);
            for (r, wr) in w.iter_mut().enumerate() {
                if *wr > 0.0 {
                    *wr *= sums.get(&my_vals[r]).copied().unwrap_or(0.0);
                }
            }
        }
        w
    }

    /// 1/0 weights of a table's rows under the query's predicates on it.
    fn filter_mask(&self, q: &Query, table: usize) -> Vec<f64> {
        let t = &self.ds.tables[table];
        let mut w = vec![1.0f64; t.num_rows()];
        for p in q.predicates_on(table) {
            let col = t.col(p.col);
            for (r, wr) in w.iter_mut().enumerate() {
                if *wr > 0.0 && !(p.lo..=p.hi).contains(&col[r]) {
                    *wr = 0.0;
                }
            }
        }
        w
    }

    /// Number of rows of `table` passing the query's predicates on it.
    pub fn filtered_size(&self, q: &Query, table: usize) -> u64 {
        self.filter_mask(q, table).iter().sum::<f64>() as u64
    }

    /// Cardinality of the sub-query induced by a connected subset of the
    /// pattern (predicates restricted to the subset). Used for true
    /// intermediate sizes during plan costing.
    pub fn count_subset(&self, q: &Query, subset: &[usize]) -> u64 {
        let sub = Query::new(
            subset.to_vec(),
            q.predicates
                .iter()
                .copied()
                .filter(|p| subset.contains(&p.table))
                .collect(),
        );
        self.count(&sub)
    }

    /// Exact cardinalities of a batch of queries, fanned out over the
    /// deterministic pool (`PACE_THREADS`) when the calibrated
    /// profitability oracle says the batch is worth it. Queries are
    /// independent, the per-edge group-by sums are shared read-only across
    /// workers, and per-chunk results are concatenated in chunk order, so
    /// the result is identical to mapping [`Executor::count`] sequentially
    /// whatever grain the oracle picks.
    pub fn count_batch(&self, queries: &[Query]) -> Vec<u64> {
        let _span = pace_trace::span("engine::count_batch");
        // One query costs O(sum of pattern table rows); model an average
        // query as one pass over the dataset's rows (a few flops and one
        // i64 read per row). The old one-task-per-query fan-out paid pool
        // dispatch per query and lost to sequential execution on hosts
        // with little effective parallelism.
        let rows: usize = self.ds.tables.iter().map(pace_data::Table::num_rows).sum();
        let decision = pool::cost::decide(pool::cost::RegionCost {
            items: queries.len(),
            flops_per_item: 4.0 * rows as f64,
            bytes_per_item: (rows * size_of::<i64>()) as f64,
        });
        let grain = decision.grain(queries.len());
        pool::par_chunks(queries.len(), grain, |lo, hi| {
            queries[lo..hi]
                .iter()
                .map(|q| self.count(q))
                .collect::<Vec<u64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Labels a batch of queries with their exact cardinalities.
    pub fn label(&self, queries: Vec<Query>) -> Workload {
        self.label_par(queries)
    }

    /// Labels a batch of queries in parallel over the pool. Output order and
    /// values match the sequential labeling exactly.
    pub fn label_par(&self, queries: Vec<Query>) -> Workload {
        let cards = self.count_batch(&queries);
        queries
            .into_iter()
            .zip(cards)
            .map(|(query, cardinality)| LabeledQuery { query, cardinality })
            .collect()
    }

    /// Labels queries, dropping those with zero cardinality (the paper
    /// eliminates them during training).
    pub fn label_nonzero(&self, queries: Vec<Query>) -> Workload {
        self.label(queries)
            .into_iter()
            .filter(|lq| lq.cardinality > 0)
            .collect()
    }
}

/// Natural log of the largest unfiltered join cardinality over connected
/// patterns of up to `max_pattern_size` tables, plus headroom. This is the
/// output-normalization constant `ln C_max` CE models use: tight enough that
/// real cardinalities span the sigmoid's range (a product-of-table-sizes
/// bound wildly overshoots on PK–FK joins and cripples training).
///
/// Derivable by an attacker: every term is a `COUNT(*)` of an unfiltered
/// join, which the threat model allows.
pub fn ln_max_cardinality(ds: &Dataset, max_pattern_size: usize) -> f64 {
    let exec = Executor::new(ds);
    let mut max_card = 1u64;
    for pattern in ds.schema.connected_patterns(max_pattern_size.max(1)) {
        let q = Query::new(pattern, vec![]);
        max_card = max_card.max(exec.count(&q));
    }
    ((max_card.max(2) as f64).ln() * 1.1 + 1.0).max(2.0)
}

/// Brute-force nested-loop reference counter; exponential, only for tests on
/// tiny data.
pub fn naive_count(ds: &Dataset, q: &Query) -> u64 {
    fn passes(ds: &Dataset, q: &Query, table: usize, row: usize) -> bool {
        q.predicates_on(table).all(|p| {
            let v = ds.tables[table].get(row, p.col);
            (p.lo..=p.hi).contains(&v)
        })
    }
    // Enumerate row combinations over the pattern, checking all induced edges.
    let tables = &q.tables;
    // The odometer below probes row 0 of every pattern table before any
    // bounds check, so an empty table must short-circuit here (its join is
    // empty by definition).
    if tables.iter().any(|&t| ds.tables[t].num_rows() == 0) {
        return 0;
    }
    let edges = ds.schema.induced_edges(tables);
    let mut rows = vec![0usize; tables.len()];
    let mut count = 0u64;
    'outer: loop {
        let ok = tables
            .iter()
            .enumerate()
            .all(|(i, &t)| passes(ds, q, t, rows[i]))
            && edges.iter().all(|e| {
                let li = tables
                    .iter()
                    .position(|&t| t == e.left.0)
                    .expect("in pattern");
                let ri = tables
                    .iter()
                    .position(|&t| t == e.right.0)
                    .expect("in pattern");
                ds.tables[e.left.0].get(rows[li], e.left.1)
                    == ds.tables[e.right.0].get(rows[ri], e.right.1)
            });
        if ok {
            count += 1;
        }
        // Odometer increment.
        for i in 0..tables.len() {
            rows[i] += 1;
            if rows[i] < ds.tables[tables[i]].num_rows() {
                continue 'outer;
            }
            rows[i] = 0;
            if i == tables.len() - 1 {
                break 'outer;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::schema::{table, JoinEdge};
    use pace_data::{Dataset, Schema, Table};
    use pace_workload::Predicate;

    fn chain_dataset() -> Dataset {
        // a(4 rows) — b(6 rows) — c(5 rows)
        let schema = Schema::new(
            "chain",
            vec![
                table("a", &["id"], &[], &["x"]),
                table("b", &["id"], &["a_id"], &["y"]),
                table("c", &["id"], &["b_id"], &["z"]),
            ],
            vec![
                JoinEdge {
                    left: (0, 0),
                    right: (1, 1),
                },
                JoinEdge {
                    left: (1, 0),
                    right: (2, 1),
                },
            ],
        );
        let a = Table::from_columns(vec![vec![0, 1, 2, 3], vec![10, 20, 30, 40]]);
        let b = Table::from_columns(vec![
            vec![0, 1, 2, 3, 4, 5],
            vec![0, 0, 1, 1, 2, 9], // last row dangles
            vec![5, 6, 7, 8, 9, 10],
        ]);
        let c = Table::from_columns(vec![
            vec![0, 1, 2, 3, 4],
            vec![0, 0, 0, 2, 4],
            vec![1, 2, 3, 4, 5],
        ]);
        Dataset::new(schema, vec![a, b, c])
    }

    #[test]
    fn single_table_count_with_predicate() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 15,
                hi: 35,
            }],
        );
        assert_eq!(ex.count(&q), 2);
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn two_way_join_count() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(vec![0, 1], vec![]);
        // b rows with a_id in {0,0,1,1,2} → 5 matches.
        assert_eq!(ex.count(&q), 5);
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn three_way_join_count_matches_naive() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(vec![0, 1, 2], vec![]);
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
        // b=0 matched by c rows {0,1,2}; b=2 by {3}; b=4 by {4}.
        assert_eq!(ex.count(&q), 5);
    }

    #[test]
    fn join_with_predicates_matches_naive() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0, 1, 2],
            vec![
                Predicate {
                    table: 1,
                    col: 2,
                    lo: 5,
                    hi: 7,
                },
                Predicate {
                    table: 2,
                    col: 2,
                    lo: 2,
                    hi: 5,
                },
            ],
        );
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn empty_result_when_predicate_excludes_all() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0, 1],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 1000,
                hi: 2000,
            }],
        );
        assert_eq!(ex.count(&q), 0);
    }

    #[test]
    fn count_subset_restricts_predicates() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0, 1, 2],
            vec![Predicate {
                table: 2,
                col: 2,
                lo: 100,
                hi: 200,
            }], // kills c
        );
        assert_eq!(ex.count(&q), 0);
        // The {a, b} prefix ignores c's predicate.
        assert_eq!(ex.count_subset(&q, &[0, 1]), 5);
    }

    #[test]
    fn filtered_size_counts_matching_rows() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![1],
            vec![Predicate {
                table: 1,
                col: 2,
                lo: 6,
                hi: 9,
            }],
        );
        assert_eq!(ex.filtered_size(&q, 1), 4);
    }

    /// Regression: the odometer used to probe row 0 of each pattern table
    /// before its (dead) empty-table check, so an empty table either panicked
    /// on the index (with predicates/edges probing rows) or miscounted. Empty
    /// tables must yield 0 up front.
    #[test]
    fn naive_count_on_empty_table_is_zero() {
        let schema = Schema::new(
            "empty",
            vec![
                table("a", &["id"], &[], &["x"]),
                table("b", &["id"], &["a_id"], &[]),
            ],
            vec![JoinEdge {
                left: (0, 0),
                right: (1, 1),
            }],
        );
        let a = Table::from_columns(vec![vec![], vec![]]);
        let b = Table::from_columns(vec![vec![0, 1], vec![0, 0]]);
        let ds = Dataset::new(schema, vec![a, b]);
        // Join through the empty side: previously panicked indexing row 0.
        let join = Query::new(vec![0, 1], vec![]);
        assert_eq!(naive_count(&ds, &join), 0);
        // Single empty table with a predicate: previously panicked in passes().
        let filtered = Query::new(
            vec![0],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 0,
                hi: 10,
            }],
        );
        assert_eq!(naive_count(&ds, &filtered), 0);
        // Single empty table, no predicates: previously counted the empty
        // row-combination as one match.
        assert_eq!(naive_count(&ds, &Query::new(vec![0], vec![])), 0);
        assert_eq!(Executor::new(&ds).count(&join), 0);
    }

    /// The trivial-child fast path (cached unfiltered group-by sums) must
    /// agree with the brute-force reference, and a predicate on the child
    /// must still take the recomputed path.
    #[test]
    fn cached_edge_sums_match_bruteforce() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        for pattern in ds.schema.connected_patterns(3) {
            let q = Query::new(pattern.clone(), vec![]);
            assert_eq!(ex.count(&q), naive_count(&ds, &q), "pattern {pattern:?}");
        }
        let filtered_child = Query::new(
            vec![0, 1],
            vec![Predicate {
                table: 1,
                col: 2,
                lo: 6,
                hi: 8,
            }],
        );
        assert_eq!(ex.count(&filtered_child), naive_count(&ds, &filtered_child));
    }

    #[test]
    fn count_batch_matches_individual_counts_at_any_thread_count() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let queries: Vec<Query> = ds
            .schema
            .connected_patterns(3)
            .into_iter()
            .map(|p| Query::new(p, vec![]))
            .collect();
        let reference: Vec<u64> = queries.iter().map(|q| ex.count(q)).collect();
        for threads in [1, 2, 5] {
            pace_runtime::set_threads(threads);
            assert_eq!(ex.count_batch(&queries), reference, "threads={threads}");
        }
        pace_runtime::set_threads(0);
    }

    #[test]
    fn label_nonzero_drops_empty() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let qs = vec![
            Query::new(vec![0], vec![]),
            Query::new(
                vec![0],
                vec![Predicate {
                    table: 0,
                    col: 1,
                    lo: 999,
                    hi: 1000,
                }],
            ),
        ];
        let labeled = ex.label_nonzero(qs);
        assert_eq!(labeled.len(), 1);
        assert_eq!(labeled[0].cardinality, 4);
    }
}
