//! Exact `COUNT(*)` of filtered SPJ queries.
//!
//! All schemas in this reproduction have acyclic (forest) join graphs, so the
//! cardinality of a filtered join is computed by a bottom-up weighted
//! semi-join aggregation over the pattern-induced join tree:
//!
//! * every row starts with weight 1 if it passes the table's predicates,
//!   else 0;
//! * a child table is folded into its parent by summing child weights per
//!   join value and multiplying each parent row's weight by the sum matching
//!   its join key;
//! * the query cardinality is the weight sum at the root.
//!
//! One query costs `O(Σ pattern table rows)` — no materialization, exact
//! counts. This implements both the attacker's `COUNT(*)` oracle and the true
//! intermediate-size oracle of the execution simulator.

use pace_data::Dataset;
use pace_workload::{LabeledQuery, Query, Workload};
use std::collections::HashMap;

/// Exact-count executor over one dataset.
pub struct Executor<'a> {
    ds: &'a Dataset,
    adj: Vec<Vec<(usize, usize)>>,
}

impl<'a> Executor<'a> {
    /// Creates an executor (precomputes join-graph adjacency).
    pub fn new(ds: &'a Dataset) -> Self {
        Self {
            ds,
            adj: ds.schema.adjacency(),
        }
    }

    /// The dataset this executor reads.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// Exact cardinality of `q`.
    ///
    /// # Panics
    /// Panics when the query's pattern is empty or not connected (invalid
    /// queries should be filtered before execution).
    pub fn count(&self, q: &Query) -> u64 {
        assert!(
            self.ds.schema.is_connected(&q.tables),
            "count over a disconnected pattern {:?}",
            q.tables
        );
        let root = q.tables[0];
        let w = self.subtree_weights(q, root, usize::MAX);
        w.iter().sum::<f64>().round() as u64
    }

    /// Weights of `table`'s rows after folding in all pattern children on the
    /// far side from `parent`.
    fn subtree_weights(&self, q: &Query, table: usize, parent: usize) -> Vec<f64> {
        let t = &self.ds.tables[table];
        let mut w = self.filter_mask(q, table);
        for &(neighbor, edge_idx) in &self.adj[table] {
            if neighbor == parent || !q.tables.contains(&neighbor) {
                continue;
            }
            let child_w = self.subtree_weights(q, neighbor, table);
            let edge = self.ds.schema.edges[edge_idx];
            let (my_col, child_col) = if edge.left.0 == table {
                (edge.left.1, edge.right.1)
            } else {
                (edge.right.1, edge.left.1)
            };
            let child_vals = self.ds.tables[neighbor].col(child_col);
            let mut sums: HashMap<i64, f64> = HashMap::new();
            for (r, &cw) in child_w.iter().enumerate() {
                if cw > 0.0 {
                    *sums.entry(child_vals[r]).or_insert(0.0) += cw;
                }
            }
            let my_vals = t.col(my_col);
            for (r, wr) in w.iter_mut().enumerate() {
                if *wr > 0.0 {
                    *wr *= sums.get(&my_vals[r]).copied().unwrap_or(0.0);
                }
            }
        }
        w
    }

    /// 1/0 weights of a table's rows under the query's predicates on it.
    fn filter_mask(&self, q: &Query, table: usize) -> Vec<f64> {
        let t = &self.ds.tables[table];
        let mut w = vec![1.0f64; t.num_rows()];
        for p in q.predicates_on(table) {
            let col = t.col(p.col);
            for (r, wr) in w.iter_mut().enumerate() {
                if *wr > 0.0 && !(p.lo..=p.hi).contains(&col[r]) {
                    *wr = 0.0;
                }
            }
        }
        w
    }

    /// Number of rows of `table` passing the query's predicates on it.
    pub fn filtered_size(&self, q: &Query, table: usize) -> u64 {
        self.filter_mask(q, table).iter().sum::<f64>() as u64
    }

    /// Cardinality of the sub-query induced by a connected subset of the
    /// pattern (predicates restricted to the subset). Used for true
    /// intermediate sizes during plan costing.
    pub fn count_subset(&self, q: &Query, subset: &[usize]) -> u64 {
        let sub = Query::new(
            subset.to_vec(),
            q.predicates
                .iter()
                .copied()
                .filter(|p| subset.contains(&p.table))
                .collect(),
        );
        self.count(&sub)
    }

    /// Labels a batch of queries with their exact cardinalities.
    pub fn label(&self, queries: Vec<Query>) -> Workload {
        queries
            .into_iter()
            .map(|q| {
                let cardinality = self.count(&q);
                LabeledQuery {
                    query: q,
                    cardinality,
                }
            })
            .collect()
    }

    /// Labels queries, dropping those with zero cardinality (the paper
    /// eliminates them during training).
    pub fn label_nonzero(&self, queries: Vec<Query>) -> Workload {
        self.label(queries)
            .into_iter()
            .filter(|lq| lq.cardinality > 0)
            .collect()
    }
}

/// Natural log of the largest unfiltered join cardinality over connected
/// patterns of up to `max_pattern_size` tables, plus headroom. This is the
/// output-normalization constant `ln C_max` CE models use: tight enough that
/// real cardinalities span the sigmoid's range (a product-of-table-sizes
/// bound wildly overshoots on PK–FK joins and cripples training).
///
/// Derivable by an attacker: every term is a `COUNT(*)` of an unfiltered
/// join, which the threat model allows.
pub fn ln_max_cardinality(ds: &Dataset, max_pattern_size: usize) -> f64 {
    let exec = Executor::new(ds);
    let mut max_card = 1u64;
    for pattern in ds.schema.connected_patterns(max_pattern_size.max(1)) {
        let q = Query::new(pattern, vec![]);
        max_card = max_card.max(exec.count(&q));
    }
    ((max_card.max(2) as f64).ln() * 1.1 + 1.0).max(2.0)
}

/// Brute-force nested-loop reference counter; exponential, only for tests on
/// tiny data.
pub fn naive_count(ds: &Dataset, q: &Query) -> u64 {
    fn passes(ds: &Dataset, q: &Query, table: usize, row: usize) -> bool {
        q.predicates_on(table).all(|p| {
            let v = ds.tables[table].get(row, p.col);
            (p.lo..=p.hi).contains(&v)
        })
    }
    // Enumerate row combinations over the pattern, checking all induced edges.
    let tables = &q.tables;
    let edges = ds.schema.induced_edges(tables);
    let mut rows = vec![0usize; tables.len()];
    let mut count = 0u64;
    'outer: loop {
        let ok = tables
            .iter()
            .enumerate()
            .all(|(i, &t)| passes(ds, q, t, rows[i]))
            && edges.iter().all(|e| {
                let li = tables
                    .iter()
                    .position(|&t| t == e.left.0)
                    .expect("in pattern");
                let ri = tables
                    .iter()
                    .position(|&t| t == e.right.0)
                    .expect("in pattern");
                ds.tables[e.left.0].get(rows[li], e.left.1)
                    == ds.tables[e.right.0].get(rows[ri], e.right.1)
            });
        if ok {
            count += 1;
        }
        // Odometer increment.
        for i in 0..tables.len() {
            rows[i] += 1;
            if rows[i] < ds.tables[tables[i]].num_rows() {
                continue 'outer;
            }
            rows[i] = 0;
            if i == tables.len() - 1 {
                break 'outer;
            }
        }
        if tables.iter().any(|&t| ds.tables[t].num_rows() == 0) {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::schema::{table, JoinEdge};
    use pace_data::{Dataset, Schema, Table};
    use pace_workload::Predicate;

    fn chain_dataset() -> Dataset {
        // a(4 rows) — b(6 rows) — c(5 rows)
        let schema = Schema::new(
            "chain",
            vec![
                table("a", &["id"], &[], &["x"]),
                table("b", &["id"], &["a_id"], &["y"]),
                table("c", &["id"], &["b_id"], &["z"]),
            ],
            vec![
                JoinEdge {
                    left: (0, 0),
                    right: (1, 1),
                },
                JoinEdge {
                    left: (1, 0),
                    right: (2, 1),
                },
            ],
        );
        let a = Table::from_columns(vec![vec![0, 1, 2, 3], vec![10, 20, 30, 40]]);
        let b = Table::from_columns(vec![
            vec![0, 1, 2, 3, 4, 5],
            vec![0, 0, 1, 1, 2, 9], // last row dangles
            vec![5, 6, 7, 8, 9, 10],
        ]);
        let c = Table::from_columns(vec![
            vec![0, 1, 2, 3, 4],
            vec![0, 0, 0, 2, 4],
            vec![1, 2, 3, 4, 5],
        ]);
        Dataset::new(schema, vec![a, b, c])
    }

    #[test]
    fn single_table_count_with_predicate() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 15,
                hi: 35,
            }],
        );
        assert_eq!(ex.count(&q), 2);
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn two_way_join_count() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(vec![0, 1], vec![]);
        // b rows with a_id in {0,0,1,1,2} → 5 matches.
        assert_eq!(ex.count(&q), 5);
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn three_way_join_count_matches_naive() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(vec![0, 1, 2], vec![]);
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
        // b=0 matched by c rows {0,1,2}; b=2 by {3}; b=4 by {4}.
        assert_eq!(ex.count(&q), 5);
    }

    #[test]
    fn join_with_predicates_matches_naive() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0, 1, 2],
            vec![
                Predicate {
                    table: 1,
                    col: 2,
                    lo: 5,
                    hi: 7,
                },
                Predicate {
                    table: 2,
                    col: 2,
                    lo: 2,
                    hi: 5,
                },
            ],
        );
        assert_eq!(ex.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn empty_result_when_predicate_excludes_all() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0, 1],
            vec![Predicate {
                table: 0,
                col: 1,
                lo: 1000,
                hi: 2000,
            }],
        );
        assert_eq!(ex.count(&q), 0);
    }

    #[test]
    fn count_subset_restricts_predicates() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![0, 1, 2],
            vec![Predicate {
                table: 2,
                col: 2,
                lo: 100,
                hi: 200,
            }], // kills c
        );
        assert_eq!(ex.count(&q), 0);
        // The {a, b} prefix ignores c's predicate.
        assert_eq!(ex.count_subset(&q, &[0, 1]), 5);
    }

    #[test]
    fn filtered_size_counts_matching_rows() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let q = Query::new(
            vec![1],
            vec![Predicate {
                table: 1,
                col: 2,
                lo: 6,
                hi: 9,
            }],
        );
        assert_eq!(ex.filtered_size(&q, 1), 4);
    }

    #[test]
    fn label_nonzero_drops_empty() {
        let ds = chain_dataset();
        let ex = Executor::new(&ds);
        let qs = vec![
            Query::new(vec![0], vec![]),
            Query::new(
                vec![0],
                vec![Predicate {
                    table: 0,
                    col: 1,
                    lo: 999,
                    hi: 1000,
                }],
            ),
        ];
        let labeled = ex.label_nonzero(qs);
        assert_eq!(labeled.len(), 1);
        assert_eq!(labeled[0].cardinality, 4);
    }
}
