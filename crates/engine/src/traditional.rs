//! Traditional (non-learned) cardinality estimators: per-column equi-depth
//! histograms under the attribute-value-independence assumption, and
//! Bernoulli-sample estimation.
//!
//! The paper motivates learned CE by its accuracy advantage over these
//! methods — and this reproduction uses them for a security counterpoint:
//! they do not train on queries, so PACE's poisoning channel simply does not
//! exist for them (see the `learned_vs_traditional` experiment).

use crate::count::Executor;
use crate::estimator::CardEstimator;
use pace_data::Dataset;
use pace_workload::Query;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One column's equi-depth histogram.
#[derive(Clone, Debug)]
struct ColumnHistogram {
    /// Bucket upper bounds (inclusive), ascending; equal-ish row counts per
    /// bucket.
    bounds: Vec<i64>,
    rows: usize,
}

impl ColumnHistogram {
    fn build(values: &[i64], buckets: usize) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rows = sorted.len();
        let buckets = buckets.max(1).min(rows.max(1));
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = (b * rows / buckets).saturating_sub(1);
            bounds.push(sorted.get(idx).copied().unwrap_or(0));
        }
        bounds.dedup();
        Self { bounds, rows }
    }

    /// Estimated selectivity of `lo ≤ v ≤ hi`.
    fn selectivity(&self, lo: i64, hi: i64) -> f64 {
        if self.rows == 0 || self.bounds.is_empty() || hi < lo {
            return 0.0;
        }
        let frac_leq = |v: i64| -> f64 {
            // Number of buckets entirely ≤ v, with linear interpolation
            // inside the straddling bucket.
            let n = self.bounds.len() as f64;
            let mut covered = 0.0;
            let mut prev = None::<i64>;
            for (i, &ub) in self.bounds.iter().enumerate() {
                if v >= ub {
                    covered = (i + 1) as f64;
                    prev = Some(ub);
                } else {
                    let lb = prev.unwrap_or(ub.min(v));
                    let width = (ub - lb).max(1) as f64;
                    let inside = ((v - lb).max(0) as f64 / width).min(1.0);
                    covered += inside;
                    break;
                }
            }
            (covered / n).clamp(0.0, 1.0)
        };
        (frac_leq(hi) - frac_leq(lo - 1)).clamp(0.0, 1.0)
    }
}

/// Histogram-based estimator: per-table selectivities multiply under the
/// attribute-value-independence (AVI) assumption; joins are estimated with
/// the classic `|R ⋈ S| ≈ |R|·|S| / max(V(R.a), V(S.b))` uniformity formula.
pub struct HistogramEstimator {
    histograms: Vec<Vec<ColumnHistogram>>,
    table_rows: Vec<f64>,
    distinct: Vec<Vec<f64>>,
    schema: pace_data::Schema,
}

impl HistogramEstimator {
    /// Builds histograms with `buckets` buckets per column.
    pub fn build(ds: &Dataset, buckets: usize) -> Self {
        let histograms = ds
            .tables
            .iter()
            .map(|t| {
                (0..t.num_cols())
                    .map(|c| ColumnHistogram::build(t.col(c), buckets))
                    .collect()
            })
            .collect();
        let distinct = ds
            .tables
            .iter()
            .map(|t| {
                (0..t.num_cols())
                    .map(|c| {
                        let mut v = t.col(c).to_vec();
                        v.sort_unstable();
                        v.dedup();
                        v.len().max(1) as f64
                    })
                    .collect()
            })
            .collect();
        Self {
            histograms,
            table_rows: ds.tables.iter().map(|t| t.num_rows() as f64).collect(),
            distinct,
            schema: ds.schema.clone(),
        }
    }

    fn table_selectivity(&self, q: &Query, table: usize) -> f64 {
        q.predicates_on(table)
            .map(|p| self.histograms[table][p.col].selectivity(p.lo, p.hi))
            .product()
    }
}

impl CardEstimator for HistogramEstimator {
    fn estimate(&self, q: &Query) -> f64 {
        // Cross product of filtered table sizes…
        let mut card: f64 = q
            .tables
            .iter()
            .map(|&t| self.table_rows[t] * self.table_selectivity(q, t))
            .product();
        // …reduced by each join edge's uniformity factor.
        for e in self.schema.induced_edges(&q.tables) {
            let v_left = self.distinct[e.left.0][e.left.1];
            let v_right = self.distinct[e.right.0][e.right.1];
            card /= v_left.max(v_right);
        }
        card.max(0.0)
    }
}

/// Bernoulli-sampling estimator: keeps a `rate` sample of every table and
/// answers by exact counting over the sample, scaled back up.
pub struct SamplingEstimator {
    sample: Dataset,
    /// Per-table inverse sampling rates.
    scale: Vec<f64>,
}

impl SamplingEstimator {
    /// Samples each table independently at `rate` (at least 1 row).
    pub fn build(ds: &Dataset, rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = Vec::with_capacity(ds.tables.len());
        let mut scale = Vec::with_capacity(ds.tables.len());
        for t in &ds.tables {
            let keep: Vec<usize> = (0..t.num_rows())
                .filter(|_| rng.random_range(0.0..1.0) < rate)
                .collect();
            let keep = if keep.is_empty() && t.num_rows() > 0 {
                vec![0]
            } else {
                keep
            };
            let cols = (0..t.num_cols())
                .map(|c| keep.iter().map(|&r| t.get(r, c)).collect())
                .collect();
            scale.push(if keep.is_empty() {
                1.0
            } else {
                t.num_rows() as f64 / keep.len() as f64
            });
            tables.push(pace_data::Table::from_columns(cols));
        }
        Self {
            sample: Dataset::new(ds.schema.clone(), tables),
            scale,
        }
    }
}

impl CardEstimator for SamplingEstimator {
    fn estimate(&self, q: &Query) -> f64 {
        let exec = Executor::new(&self.sample);
        let raw = exec.count(q) as f64;
        // Each joined table contributes its own scale-up factor.
        let factor: f64 = q.tables.iter().map(|&t| self.scale[t]).product();
        raw * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};
    use pace_workload::{generate_queries, q_error, WorkloadSpec};

    #[test]
    fn histogram_selectivity_basics() {
        let h = ColumnHistogram::build(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 5);
        assert!((h.selectivity(1, 10) - 1.0).abs() < 1e-9);
        let half = h.selectivity(1, 5);
        assert!((half - 0.5).abs() < 0.15, "got {half}");
        assert_eq!(h.selectivity(11, 20), 0.0);
        assert_eq!(h.selectivity(5, 4), 0.0);
    }

    #[test]
    fn histogram_estimator_is_reasonable_on_single_table() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 71);
        let exec = Executor::new(&ds);
        let est = HistogramEstimator::build(&ds, 32);
        let mut rng = StdRng::seed_from_u64(72);
        let qs = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, 100);
        let labeled = exec.label_nonzero(qs);
        let mean_qerr: f64 = labeled
            .iter()
            .map(|lq| q_error(est.estimate(&lq.query), lq.cardinality as f64))
            .sum::<f64>()
            / labeled.len() as f64;
        // AVI over correlated columns is rough but must stay sane.
        assert!(mean_qerr < 100.0, "histogram wildly off: {mean_qerr}");
        assert!(mean_qerr > 1.0);
    }

    #[test]
    fn sampling_estimator_full_rate_is_exact() {
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 73);
        let exec = Executor::new(&ds);
        let est = SamplingEstimator::build(&ds, 1.0, 74);
        let mut rng = StdRng::seed_from_u64(75);
        for lq in exec.label_nonzero(generate_queries(
            &ds,
            &WorkloadSpec::default(),
            &mut rng,
            30,
        )) {
            let e = est.estimate(&lq.query);
            assert!(
                (e - lq.cardinality as f64).abs() < 1e-6,
                "{e} vs {}",
                lq.cardinality
            );
        }
    }

    #[test]
    fn sampling_estimator_partial_rate_is_unbiasedish() {
        let ds = build(DatasetKind::Dmv, Scale::quick(), 76);
        let exec = Executor::new(&ds);
        let q = Query::new(vec![0], vec![]);
        let truth = exec.count(&q) as f64;
        // Average over several sample seeds.
        let mean: f64 = (0..5)
            .map(|s| SamplingEstimator::build(&ds, 0.2, s).estimate(&q))
            .sum::<f64>()
            / 5.0;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn join_estimates_are_finite_and_positive() {
        let ds = build(DatasetKind::Stats, Scale::tiny(), 77);
        let hist = HistogramEstimator::build(&ds, 16);
        let samp = SamplingEstimator::build(&ds, 0.3, 78);
        let mut rng = StdRng::seed_from_u64(79);
        for q in generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 50) {
            for est in [&hist as &dyn CardEstimator, &samp] {
                let e = est.estimate(&q);
                assert!(e.is_finite() && e >= 0.0, "bad estimate {e} for {q:?}");
            }
        }
    }
}
