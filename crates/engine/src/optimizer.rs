//! Cost-based join-order *and operator* optimization.
//!
//! Left-deep dynamic programming over connected table subsets. The cost of a
//! plan is `C_out` (the estimated cardinality of every intermediate result)
//! plus per-join operator input costs — each join picks hash join (scan both
//! inputs) or index nested-loop (per-outer-tuple lookups) by estimated cost.
//! This is the classic setting in which cardinality-estimation errors
//! translate into bad join orders *and* bad operator choices — exactly the
//! causal chain behind the paper's end-to-end experiment (Table 5,
//! Section 7.3).

use crate::estimator::CardEstimator;
use pace_data::Schema;
use pace_workload::Query;

/// Physical join operator of one plan step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinOp {
    /// Build a hash table on the inner input and probe with the outer:
    /// cost ≈ `|outer| + |inner| + |out|`.
    Hash,
    /// Index nested-loop: one index lookup per outer tuple, never scanning
    /// the inner: cost ≈ `|outer|·c_lookup + |out|`.
    IndexNestedLoop,
}

/// Work units charged per outer tuple by an index nested-loop lookup.
pub const INDEX_LOOKUP_COST: f64 = 4.0;

/// A left-deep join plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Tables in join order; every prefix is connected.
    pub order: Vec<usize>,
    /// Operator joining `order[k+1]` into the prefix (length
    /// `order.len() − 1`).
    pub ops: Vec<JoinOp>,
    /// Estimated cost (C_out + operator input costs) under the estimator
    /// used for planning.
    pub est_cost: f64,
}

/// Chooses the cheapest left-deep join order for `q` under `est`.
///
/// # Panics
/// Panics when the query pattern is empty or exceeds 20 tables (bitmask DP).
#[allow(clippy::needless_range_loop)] // `i` is simultaneously a bit index
pub fn optimize(q: &Query, schema: &Schema, est: &dyn CardEstimator) -> Plan {
    let tables = &q.tables;
    let n = tables.len();
    assert!(n >= 1, "cannot optimize an empty pattern");
    assert!(n <= 20, "pattern too large for subset DP");
    if n == 1 {
        let cost = est.estimate(q).max(1.0);
        return Plan {
            order: tables.clone(),
            ops: Vec::new(),
            est_cost: cost,
        };
    }

    // Local adjacency between pattern tables.
    let adj_edges = schema.induced_edges(tables);
    let local = |t: usize| tables.iter().position(|&x| x == t).expect("in pattern");
    let mut adj = vec![0u32; n];
    for e in &adj_edges {
        let (a, b) = (local(e.left.0), local(e.right.0));
        adj[a] |= 1 << b;
        adj[b] |= 1 << a;
    }

    let full: u32 = (1 << n) - 1;
    let mut card = vec![f64::NAN; (full + 1) as usize];
    let mut cost = vec![f64::INFINITY; (full + 1) as usize];
    let mut last = vec![usize::MAX; (full + 1) as usize];
    let mut last_op = vec![JoinOp::Hash; (full + 1) as usize];

    let sub_query = |mask: u32| -> Query {
        let subset: Vec<usize> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| tables[i])
            .collect();
        Query::new(
            subset.clone(),
            q.predicates
                .iter()
                .copied()
                .filter(|p| subset.contains(&p.table))
                .collect(),
        )
    };
    let connected = |mask: u32| -> bool {
        let start = mask.trailing_zeros() as usize;
        let mut seen = 1u32 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut next = 0u32;
            for i in 0..n {
                if frontier & (1 << i) != 0 {
                    next |= adj[i] & mask & !seen;
                }
            }
            seen |= next;
            frontier = next;
        }
        seen == mask
    };

    for i in 0..n {
        let m = 1u32 << i;
        let c = est.estimate(&sub_query(m)).max(1.0);
        card[m as usize] = c;
        cost[m as usize] = c;
        last[m as usize] = i;
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 || !connected(mask) {
            continue;
        }
        let c_mask = {
            let c = est.estimate(&sub_query(mask)).max(1.0);
            card[mask as usize] = c;
            c
        };
        for i in 0..n {
            let bit = 1u32 << i;
            if mask & bit == 0 {
                continue;
            }
            let prev = mask & !bit;
            if cost[prev as usize].is_infinite() {
                continue; // prev disconnected or unreachable
            }
            // i must join to something already in prev.
            if adj[i] & prev == 0 {
                continue;
            }
            // Operator choice: hash scans outer + inner; index-NL pays one
            // lookup per outer tuple. All sizes are estimates.
            let outer = card[prev as usize];
            let inner = card[bit as usize];
            let hash_in = outer + inner;
            let inl_in = outer * INDEX_LOOKUP_COST;
            let (op, op_in) = if inl_in <= hash_in {
                (JoinOp::IndexNestedLoop, inl_in)
            } else {
                (JoinOp::Hash, hash_in)
            };
            let total = cost[prev as usize] + c_mask + op_in;
            if total < cost[mask as usize] {
                cost[mask as usize] = total;
                last[mask as usize] = i;
                last_op[mask as usize] = op;
            }
        }
    }

    // Reconstruct order and operators.
    let mut order_local = Vec::with_capacity(n);
    let mut ops = Vec::with_capacity(n - 1);
    let mut mask = full;
    while mask != 0 {
        let i = last[mask as usize];
        assert!(i != usize::MAX, "no connected left-deep plan found");
        order_local.push(i);
        if mask.count_ones() >= 2 {
            ops.push(last_op[mask as usize]);
        }
        mask &= !(1 << i);
    }
    order_local.reverse();
    ops.reverse();
    Plan {
        order: order_local.into_iter().map(|i| tables[i]).collect(),
        ops,
        est_cost: cost[full as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::schema::{table, JoinEdge};
    use pace_workload::Query;
    use std::collections::HashMap;

    struct MapEstimator(HashMap<Vec<usize>, f64>);
    impl CardEstimator for MapEstimator {
        fn estimate(&self, q: &Query) -> f64 {
            *self.0.get(&q.tables).unwrap_or(&1.0)
        }
    }

    fn star_schema() -> Schema {
        // 0 is the hub; 1, 2, 3 are satellites.
        Schema::new(
            "star",
            vec![
                table("hub", &["id"], &[], &["h"]),
                table("s1", &["id"], &["hub_id"], &["a"]),
                table("s2", &["id"], &["hub_id"], &["b"]),
                table("s3", &["id"], &["hub_id"], &["c"]),
            ],
            vec![
                JoinEdge {
                    left: (1, 1),
                    right: (0, 0),
                },
                JoinEdge {
                    left: (2, 1),
                    right: (0, 0),
                },
                JoinEdge {
                    left: (3, 1),
                    right: (0, 0),
                },
            ],
        )
    }

    #[test]
    fn picks_cheap_intermediate_first() {
        let schema = star_schema();
        let mut m = HashMap::new();
        m.insert(vec![0], 100.0);
        m.insert(vec![1], 50.0);
        m.insert(vec![2], 50.0);
        // Joining hub with s2 first is far cheaper.
        m.insert(vec![0, 1], 10_000.0);
        m.insert(vec![0, 2], 10.0);
        m.insert(vec![0, 1, 2], 500.0);
        let est = MapEstimator(m);
        let q = Query::new(vec![0, 1, 2], vec![]);
        let plan = optimize(&q, &schema, &est);
        // First two tables must be {0, 2} in some order.
        let first_two: Vec<usize> = plan.order[..2].to_vec();
        assert!(
            first_two.contains(&0) && first_two.contains(&2),
            "order {:?}",
            plan.order
        );
        assert_eq!(plan.order[2], 1);
    }

    #[test]
    fn misestimation_flips_plan_choice() {
        let schema = star_schema();
        let mut good = HashMap::new();
        good.insert(vec![0], 100.0);
        good.insert(vec![1], 50.0);
        good.insert(vec![2], 50.0);
        good.insert(vec![0, 1], 10.0);
        good.insert(vec![0, 2], 10_000.0);
        good.insert(vec![0, 1, 2], 500.0);
        // A poisoned estimator believes the opposite.
        let mut bad = good.clone();
        bad.insert(vec![0, 1], 10_000.0);
        bad.insert(vec![0, 2], 10.0);
        let q = Query::new(vec![0, 1, 2], vec![]);
        let p_good = optimize(&q, &schema, &MapEstimator(good));
        let p_bad = optimize(&q, &schema, &MapEstimator(bad));
        assert_ne!(p_good.order, p_bad.order);
        assert!(p_good.order[..2].contains(&1));
        assert!(p_bad.order[..2].contains(&2));
    }

    #[test]
    fn every_prefix_of_plan_is_connected() {
        let schema = star_schema();
        let est = MapEstimator(HashMap::new());
        let q = Query::new(vec![0, 1, 2, 3], vec![]);
        let plan = optimize(&q, &schema, &est);
        for k in 1..=plan.order.len() {
            assert!(schema.is_connected(&plan.order[..k]));
        }
    }

    #[test]
    fn operator_choice_follows_input_sizes() {
        let schema = star_schema();
        // Tiny outer (hub=2) joining a huge satellite (s1=100k): index
        // nested-loop must win. Balanced sizes: hash must win.
        let mut m = HashMap::new();
        m.insert(vec![0], 2.0);
        m.insert(vec![1], 100_000.0);
        m.insert(vec![0, 1], 10.0);
        let q = Query::new(vec![0, 1], vec![]);
        let plan = optimize(&q, &schema, &MapEstimator(m));
        assert_eq!(
            plan.ops,
            vec![JoinOp::IndexNestedLoop],
            "order {:?}",
            plan.order
        );

        let mut m = HashMap::new();
        m.insert(vec![0], 1000.0);
        m.insert(vec![1], 1000.0);
        m.insert(vec![0, 1], 10.0);
        let plan = optimize(&q, &schema, &MapEstimator(m));
        assert_eq!(plan.ops, vec![JoinOp::Hash]);
    }

    #[test]
    fn ops_length_matches_joins() {
        let schema = star_schema();
        let est = MapEstimator(HashMap::new());
        let q = Query::new(vec![0, 1, 2, 3], vec![]);
        let plan = optimize(&q, &schema, &est);
        assert_eq!(plan.ops.len(), plan.order.len() - 1);
    }

    #[test]
    fn single_table_plan_trivial() {
        let schema = star_schema();
        let est = MapEstimator(HashMap::from([(vec![2], 42.0)]));
        let q = Query::new(vec![2], vec![]);
        let plan = optimize(&q, &schema, &est);
        assert_eq!(plan.order, vec![2]);
        assert!(plan.ops.is_empty());
        assert_eq!(plan.est_cost, 42.0);
    }
}
