//! Property test for the pool-parallel labeling path: for random predicate
//! sets and random `PACE_THREADS` settings, [`Executor::label_par`] and
//! [`Executor::count_batch`] must reproduce the sequential per-query counts
//! exactly — order, values, and zero/non-zero structure.

use pace_data::schema::{table, JoinEdge};
use pace_data::{Dataset, Schema, Table};
use pace_engine::Executor;
use pace_runtime as pool;
use pace_workload::{Predicate, Query};
use proptest::prelude::*;

/// hub(6) — s1(8), hub — s2(5) star with value columns for predicates.
fn star_dataset() -> Dataset {
    let schema = Schema::new(
        "star",
        vec![
            table("hub", &["id"], &[], &["h"]),
            table("s1", &["id"], &["hub_id"], &["a"]),
            table("s2", &["id"], &["hub_id"], &["b"]),
        ],
        vec![
            JoinEdge {
                left: (1, 1),
                right: (0, 0),
            },
            JoinEdge {
                left: (2, 1),
                right: (0, 0),
            },
        ],
    );
    let hub = Table::from_columns(vec![vec![0, 1, 2, 3, 4, 5], vec![5, 6, 7, 8, 9, 10]]);
    let s1 = Table::from_columns(vec![
        vec![0, 1, 2, 3, 4, 5, 6, 7],
        vec![0, 0, 1, 1, 2, 3, 3, 5],
        vec![10, 11, 12, 13, 14, 15, 16, 17],
    ]);
    let s2 = Table::from_columns(vec![
        vec![0, 1, 2, 3, 4],
        vec![0, 1, 1, 4, 4],
        vec![20, 21, 22, 23, 24],
    ]);
    Dataset::new(schema, vec![hub, s1, s2])
}

/// Predicate column/bounds per table index, kept inside each table's domain.
fn predicate(tbl: usize, lo: i64, width: i64) -> Predicate {
    let base = match tbl {
        0 => 5,
        1 => 10,
        _ => 20,
    };
    Predicate {
        table: tbl,
        col: if tbl == 0 { 1 } else { 2 },
        lo: base + lo,
        hi: base + lo + width,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn label_par_matches_sequential_counts(
        preds in proptest::collection::vec((0usize..3, 0i64..8, 0i64..6), 0..6),
        threads in 1usize..9,
    ) {
        let ds = star_dataset();
        let ex = Executor::new(&ds);
        let patterns = [vec![0], vec![1], vec![0, 1], vec![0, 2], vec![0, 1, 2]];
        let queries: Vec<Query> = patterns
            .iter()
            .map(|p| {
                let ps = preds
                    .iter()
                    .filter(|(t, _, _)| p.contains(t))
                    .map(|&(t, lo, w)| predicate(t, lo, w))
                    .collect();
                Query::new(p.clone(), ps)
            })
            .collect();

        pool::set_threads(1);
        let reference: Vec<u64> = queries.iter().map(|q| ex.count(q)).collect();
        pool::set_threads(threads);
        let batch = ex.count_batch(&queries);
        let labeled = ex.label_par(queries.clone());
        pool::set_threads(0);

        prop_assert_eq!(&batch, &reference);
        prop_assert_eq!(labeled.len(), queries.len());
        for (i, lq) in labeled.iter().enumerate() {
            prop_assert_eq!(&lq.query, &queries[i]);
            prop_assert_eq!(lq.cardinality, reference[i]);
        }
    }
}
