//! Exact counting on deeper/star-shaped join trees, cross-checked against
//! the brute-force reference, plus optimizer behavior on them.

use pace_data::schema::{table, JoinEdge};
use pace_data::{Dataset, Schema, Table};
use pace_engine::{ln_max_cardinality, naive_count, optimize, Executor, OracleEstimator};
use pace_workload::{Predicate, Query};

/// hub with three satellites, one of which has its own child (depth 3).
fn star_with_tail() -> Dataset {
    let schema = Schema::new(
        "star_tail",
        vec![
            table("hub", &["id"], &[], &["h"]),         // 0
            table("s1", &["id"], &["hub_id"], &["a"]),  // 1
            table("s2", &["id"], &["hub_id"], &["b"]),  // 2
            table("s3", &["id"], &["hub_id"], &[]),     // 3
            table("leaf", &["id"], &["s3_id"], &["c"]), // 4
        ],
        vec![
            JoinEdge {
                left: (1, 1),
                right: (0, 0),
            },
            JoinEdge {
                left: (2, 1),
                right: (0, 0),
            },
            JoinEdge {
                left: (3, 1),
                right: (0, 0),
            },
            JoinEdge {
                left: (4, 1),
                right: (3, 0),
            },
        ],
    );
    let hub = Table::from_columns(vec![vec![0, 1, 2], vec![5, 6, 7]]);
    let s1 = Table::from_columns(vec![
        vec![0, 1, 2, 3],
        vec![0, 0, 1, 2],
        vec![10, 11, 12, 13],
    ]);
    let s2 = Table::from_columns(vec![vec![0, 1, 2], vec![0, 1, 1], vec![20, 21, 22]]);
    let s3 = Table::from_columns(vec![vec![0, 1, 2, 3], vec![0, 0, 0, 2]]);
    let leaf = Table::from_columns(vec![
        vec![0, 1, 2, 3, 4],
        vec![0, 1, 1, 3, 3],
        vec![30, 31, 32, 33, 34],
    ]);
    Dataset::new(schema, vec![hub, s1, s2, s3, leaf])
}

#[test]
fn five_way_star_count_matches_bruteforce() {
    let ds = star_with_tail();
    let exec = Executor::new(&ds);
    let q = Query::new(vec![0, 1, 2, 3, 4], vec![]);
    assert_eq!(exec.count(&q), naive_count(&ds, &q));
    assert!(exec.count(&q) > 0);
}

#[test]
fn every_connected_pattern_matches_bruteforce() {
    let ds = star_with_tail();
    let exec = Executor::new(&ds);
    for pattern in ds.schema.connected_patterns(5) {
        let q = Query::new(pattern.clone(), vec![]);
        assert_eq!(
            exec.count(&q),
            naive_count(&ds, &q),
            "mismatch on pattern {pattern:?}"
        );
    }
}

#[test]
fn predicates_prune_through_the_tail() {
    let ds = star_with_tail();
    let exec = Executor::new(&ds);
    // Predicate on the depth-3 leaf must prune the whole join.
    let all = Query::new(vec![0, 3, 4], vec![]);
    let pruned = Query::new(
        vec![0, 3, 4],
        vec![Predicate {
            table: 4,
            col: 2,
            lo: 30,
            hi: 30,
        }],
    );
    assert!(exec.count(&pruned) < exec.count(&all));
    assert_eq!(exec.count(&pruned), naive_count(&ds, &pruned));
}

#[test]
fn optimizer_handles_five_way_star() {
    let ds = star_with_tail();
    let est = OracleEstimator::new(Executor::new(&ds));
    let q = Query::new(vec![0, 1, 2, 3, 4], vec![]);
    let plan = optimize(&q, &ds.schema, &est);
    assert_eq!(plan.order.len(), 5);
    assert_eq!(plan.ops.len(), 4);
    for k in 1..=5 {
        assert!(ds.schema.is_connected(&plan.order[..k]));
    }
}

#[test]
fn ln_max_reflects_largest_pattern_join() {
    let ds = star_with_tail();
    let exec = Executor::new(&ds);
    let mut max_card = 0u64;
    for pattern in ds.schema.connected_patterns(4) {
        max_card = max_card.max(exec.count(&Query::new(pattern, vec![])));
    }
    let ln_max = ln_max_cardinality(&ds, 4);
    assert!(
        ln_max >= (max_card as f64).ln(),
        "ln_max {ln_max} vs max {max_card}"
    );
    // Bound must be tight-ish (headroom, not product-of-tables overshoot).
    assert!(ln_max <= (max_card as f64).ln() * 1.1 + 1.0 + 1e-9);
}

#[test]
fn empty_satellite_zeroes_the_join() {
    let ds = star_with_tail();
    let exec = Executor::new(&ds);
    let q = Query::new(
        vec![0, 2],
        vec![Predicate {
            table: 2,
            col: 2,
            lo: 99,
            hi: 100,
        }],
    );
    assert_eq!(exec.count(&q), 0);
    assert_eq!(naive_count(&ds, &q), 0);
}
