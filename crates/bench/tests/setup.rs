//! The experiment harness's own invariants.

use pace_bench::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_core::AttackMethod;
use pace_data::DatasetKind;

#[test]
fn ctx_builds_consistent_workloads() {
    let mut scale = ExpScale::quick();
    scale.train_queries = 120;
    scale.test_queries = 40;
    for kind in DatasetKind::all() {
        let ctx = Ctx::new(kind, &scale, 9);
        assert_eq!(ctx.kind, kind);
        assert!(!ctx.train.is_empty() && ctx.train.len() <= 120);
        assert!(!ctx.test.is_empty() && ctx.test.len() <= 40);
        // History mirrors the training queries.
        assert_eq!(ctx.history.len(), ctx.train.len());
        // All labels are nonzero (label_nonzero filtering).
        assert!(ctx.train.iter().all(|lq| lq.cardinality > 0));
        assert!(ctx.test.iter().all(|lq| lq.cardinality > 0));
        // Knowledge bundle is coherent.
        let k = ctx.knowledge();
        assert_eq!(k.encoder.num_tables(), ctx.ds.schema.num_tables());
    }
}

#[test]
fn ctx_is_deterministic_in_seed() {
    let mut scale = ExpScale::quick();
    scale.train_queries = 60;
    scale.test_queries = 20;
    let a = Ctx::new(DatasetKind::Tpch, &scale, 123);
    let b = Ctx::new(DatasetKind::Tpch, &scale, 123);
    assert_eq!(a.train.len(), b.train.len());
    for (x, y) in a.train.iter().zip(&b.train) {
        assert_eq!(x, y);
    }
}

#[test]
fn run_cell_restores_victim_between_methods() {
    // Clean evaluated twice (before each method) must be identical: the cell
    // runner restores the victim's parameters between methods.
    let mut scale = ExpScale::quick();
    scale.train_queries = 150;
    scale.test_queries = 40;
    scale.ce.epochs = 8;
    scale.pipeline.attack.iters = 4;
    scale.pipeline.attack.n_poison = 10;
    scale.pipeline.attack.batch = 16;
    scale.pipeline.surrogate.train_queries = 60;
    scale.pipeline.surrogate.epochs = 5;
    let cells = pace_bench::run_cell(
        &scale,
        DatasetKind::Dmv,
        CeModelType::Linear,
        &[AttackMethod::Random, AttackMethod::Clean],
        77,
    );
    assert_eq!(cells.len(), 2);
    // Clean outcome's "poisoned" equals its clean baseline…
    let clean = cells
        .iter()
        .find(|c| c.method == AttackMethod::Clean)
        .expect("clean");
    assert_eq!(clean.outcome.clean.mean, clean.outcome.poisoned.mean);
    // …and both methods saw the same pre-attack model.
    let random = cells
        .iter()
        .find(|c| c.method == AttackMethod::Random)
        .expect("random");
    assert_eq!(clean.outcome.clean.mean, random.outcome.clean.mean);
}
