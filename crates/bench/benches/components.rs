//! Criterion micro-benchmarks of the substrate components: autograd
//! (including the attack's double-backward unroll), the exact-count engine,
//! the join-order optimizer, CE-model inference, and generator steps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{GeneratorConfig, PoisonGenerator};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::{optimize, Executor, OracleEstimator};
use pace_tensor::nn::{Activation, Mlp};
use pace_tensor::{Graph, Matrix, ParamStore};
use pace_workload::{generate_queries, Query, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_autograd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut ps = ParamStore::new();
    let mlp = Mlp::new(
        &mut ps,
        &mut rng,
        "m",
        &[64, 64, 64, 1],
        Activation::Relu,
        Activation::Sigmoid,
    );
    let x = Matrix::full(96, 64, 0.3);

    c.bench_function("autograd/mlp_forward_96x64", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let bind = ps.bind(&mut g);
            let xv = g.leaf(x.clone());
            let out = mlp.forward(&mut g, &bind, xv);
            black_box(g.value(out).sum())
        })
    });

    c.bench_function("autograd/mlp_backward_96x64", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let bind = ps.bind(&mut g);
            let xv = g.leaf(x.clone());
            let out = mlp.forward(&mut g, &bind, xv);
            let loss = g.mean_all(out);
            let grads = g.grad(loss, bind.vars());
            black_box(g.value(grads[0]).sum())
        })
    });

    c.bench_function("autograd/double_backward_96x64", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let bind = ps.bind(&mut g);
            let xv = g.leaf(x.clone());
            let out = mlp.forward(&mut g, &bind, xv);
            let loss = g.mean_all(out);
            let g1 = g.grad(loss, bind.vars());
            // θ' = θ − 0.01·∇; loss at θ'; grad w.r.t. input — the attack's core.
            let theta1: Vec<_> = bind
                .vars()
                .iter()
                .zip(&g1)
                .map(|(&p, &gr)| {
                    let step = g.mul_scalar(gr, 0.01);
                    g.sub(p, step)
                })
                .collect();
            let bind1 = pace_tensor::Binding::from_vars(theta1);
            let out1 = mlp.forward(&mut g, &bind1, xv);
            let loss1 = g.mean_all(out1);
            let gx = g.grad(loss1, &[xv]);
            black_box(g.value(gx[0]).sum())
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(3);
    let spec = WorkloadSpec::default();
    let queries = generate_queries(&ds, &spec, &mut rng, 64);
    let single = Query::new(vec![ds.schema.table("lineitem")], vec![]);
    let join4 = Query::new(
        vec![
            ds.schema.table("customer"),
            ds.schema.table("orders"),
            ds.schema.table("lineitem"),
            ds.schema.table("part"),
        ],
        vec![],
    );

    c.bench_function("engine/count_single_table", |b| {
        b.iter(|| black_box(exec.count(&single)))
    });
    c.bench_function("engine/count_4way_join", |b| {
        b.iter(|| black_box(exec.count(&join4)))
    });
    c.bench_function("engine/label_64_queries", |b| {
        b.iter_batched(
            || queries.clone(),
            |qs| black_box(exec.label(qs)),
            BatchSize::SmallInput,
        )
    });
    let oracle = OracleEstimator::new(Executor::new(&ds));
    c.bench_function("engine/optimize_4way_join", |b| {
        b.iter(|| black_box(optimize(&join4, &ds.schema, &oracle)))
    });
}

fn bench_models(c: &mut Criterion) {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 4);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(5);
    let spec = WorkloadSpec::default();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 96));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);

    for ty in [CeModelType::Fcn, CeModelType::Mscn, CeModelType::Rnn] {
        let model = CeModel::new(ty, &ds, CeConfig::quick(), 6);
        c.bench_function(&format!("models/{}_estimate_batch", ty.name()), |b| {
            b.iter(|| black_box(model.estimate_encoded_batch(&data.enc)))
        });
    }
    c.bench_function("models/fcn_update_10_steps", |b| {
        b.iter_batched(
            || CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 7),
            |mut m| {
                m.update(&data).expect("update converges");
                black_box(m.params().num_scalars())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_generator(c: &mut Criterion) {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 8);
    let enc = QueryEncoder::new(&ds);
    let patterns = ds.schema.connected_patterns(3);
    let generator = PoisonGenerator::new(enc, patterns, GeneratorConfig::default(), 9);
    let mut rng = StdRng::seed_from_u64(10);

    c.bench_function("attack/sample_joins_48", |b| {
        b.iter(|| black_box(generator.sample_joins(&mut rng, 48).patterns.len()))
    });
    let batch = generator.sample_joins(&mut rng, 48);
    c.bench_function("attack/forward_bounds_48", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let bind = generator.params().bind(&mut g);
            let x = generator.forward_bounds(&mut g, &bind, &batch);
            black_box(g.value(x).sum())
        })
    });
    c.bench_function("attack/generate_48_queries", |b| {
        b.iter(|| black_box(generator.generate(&mut rng, 48).0.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_autograd, bench_engine, bench_models, bench_generator
}
criterion_main!(benches);
