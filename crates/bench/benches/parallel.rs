//! Parallel-runtime payoff measurement: the same workloads timed at
//! `PACE_THREADS = 1` vs a multi-thread setting, for (a) batch query
//! labeling through [`pace_engine::Executor::count_batch`] and (b) the
//! cache-blocked parallel matmul kernel. The determinism contract makes the
//! thread count a pure performance knob, so the two timings compute
//! bit-identical results. Run with `CRITERION_JSON=BENCH_parallel.json` to
//! publish the numbers; speedups are hardware-dependent (single-core CI
//! runners report ~1×).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::{pool, Matrix};
use pace_workload::{generate_queries, Query, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PAR_THREADS: usize = 8;

fn bench_count_batch(c: &mut Criterion) {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 7);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<Query> = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 128);

    pool::set_threads(1);
    let reference = exec.count_batch(&queries);
    pool::set_threads(PAR_THREADS);
    assert_eq!(
        exec.count_batch(&queries),
        reference,
        "count_batch must be thread-count invariant"
    );

    for (id, threads) in [
        ("parallel/count_batch_t1", 1),
        ("parallel/count_batch_t8", PAR_THREADS),
    ] {
        pool::set_threads(threads);
        c.bench_function(id, |b| {
            b.iter(|| black_box(exec.count_batch(black_box(&queries))))
        });
    }
    pool::set_threads(0);
}

fn bench_matmul(c: &mut Criterion) {
    let n = 192;
    let mk = |seed: u64| {
        let mut state = seed;
        let data: Vec<f32> = (0..n * n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / 2.0e9) - 1.0
            })
            .collect();
        Matrix::from_vec(n, n, data)
    };
    let a = mk(1);
    let b = mk(2);

    pool::set_threads(1);
    let reference = a.matmul(&b);
    pool::set_threads(PAR_THREADS);
    let parallel = a.matmul(&b);
    assert_eq!(
        reference
            .data()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        parallel
            .data()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "matmul must be thread-count invariant"
    );

    for (id, threads) in [
        ("parallel/matmul_192_t1", 1),
        ("parallel/matmul_192_t8", PAR_THREADS),
    ] {
        pool::set_threads(threads);
        c.bench_function(id, |bch| {
            bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
        });
    }
    pool::set_threads(0);
}

fn bench_parallel(c: &mut Criterion) {
    bench_count_batch(c);
    bench_matmul(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_parallel
}
criterion_main!(benches);
