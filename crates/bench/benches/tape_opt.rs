//! Optimized vs. unoptimized tape execution (the `PACE_OPT` pipeline's
//! payoff measurement): one CE training-step tape and one attack
//! hypergradient tape (`K = 4` unrolled virtual updates), each compiled to
//! a [`pace_tensor::opt::TapePlan`] three ways — with every pass disabled
//! (the reachable tape replayed verbatim into per-node buffers), with the
//! full fold + CSE + DCE + buffer-reuse pipeline but elementwise fusion
//! off, and with the full pipeline including fused super-steps
//! ([`pace_tensor::fuse`]) — then replayed into a persistent arena, so the
//! fused-vs-fuse-off pair isolates what fusion alone buys. Run with
//! `CRITERION_JSON=BENCH_tape_opt.json` to publish the numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pace_ce::{q_error_loss, rows_to_matrix, CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::attack::build_hypergradient_tape;
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::opt::{optimize_with, Arena, OptConfig, TapePlan, VERIFY_TOL};
use pace_tensor::{Graph, Var};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn compile_trio(g: &Graph, outputs: &[Var], inputs: &[Var], context: &str) -> [TapePlan; 3] {
    let unopt = optimize_with(g, outputs, inputs, context, OptConfig::baseline());
    let fuse_off = OptConfig {
        fuse: false,
        ..OptConfig::default()
    };
    let no_fuse = optimize_with(g, outputs, inputs, context, fuse_off);
    let opt = optimize_with(g, outputs, inputs, context, OptConfig::default());
    unopt.verify(g, VERIFY_TOL).expect("baseline replay parity");
    no_fuse
        .verify(g, VERIFY_TOL)
        .expect("fuse-off replay parity");
    opt.verify(g, VERIFY_TOL).expect("optimized replay parity");
    println!(
        "{context}: {} nodes unoptimized, {} optimized (-{:.1}%), {} fused chain(s) \
         saving {} memory pass(es)",
        unopt.stats().nodes_after,
        opt.stats().nodes_after,
        opt.stats().node_reduction_pct(),
        opt.stats().fused_chains,
        opt.stats().fused_passes_saved
    );
    [unopt, no_fuse, opt]
}

fn bench_plan(c: &mut Criterion, id: &str, plan: &TapePlan) {
    let mut arena = Arena::new();
    plan.replay(&mut arena); // size every buffer before timing
    c.bench_function(id, |b| {
        b.iter(|| {
            plan.replay(&mut arena);
            black_box(plan.output_value(&arena, 0).data()[0])
        })
    });
}

fn bench_tape_opt(c: &mut Criterion) {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let labeled = exec.label_nonzero(generate_queries(
        &ds,
        &WorkloadSpec::default(),
        &mut rng,
        96,
    ));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);

    // One CE training step: forward + Q-error + parameter gradients.
    let mut g = Graph::new();
    let bind = model.params().bind(&mut g);
    let x = g.leaf(rows_to_matrix(&data.enc));
    let out = model.forward(&mut g, &bind, x);
    let loss = q_error_loss(&mut g, out, &data.ln_card, model.ln_max());
    let grads = g.grad(loss, bind.vars());
    let mut outputs = vec![loss];
    outputs.extend(&grads);
    let [unopt, no_fuse, opt] = compile_trio(&g, &outputs, bind.vars(), "train_step");
    bench_plan(c, "tape_opt/train_step_unoptimized", &unopt);
    bench_plan(c, "tape_opt/train_step_fuse_off", &no_fuse);
    bench_plan(c, "tape_opt/train_step_optimized", &opt);

    // One attack hypergradient step at K = 4 (Eq. 9–10).
    let half = data.enc.len() / 2;
    let n = half.min(32);
    let (g, outputs, inputs) = build_hypergradient_tape(
        &model,
        &data.enc[..n],
        &data.ln_card[..n],
        &data.enc[half..half + n],
        &data.ln_card[half..half + n],
        4,
        1e-2,
    );
    let [unopt, no_fuse, opt] = compile_trio(&g, &outputs, &inputs, "hypergrad_k4");
    bench_plan(c, "tape_opt/hypergrad_k4_unoptimized", &unopt);
    bench_plan(c, "tape_opt/hypergrad_k4_fuse_off", &no_fuse);
    bench_plan(c, "tape_opt/hypergrad_k4_optimized", &opt);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_tape_opt
}
criterion_main!(benches);
