//! `pace-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Section 7).
//!
//! Each table/figure has a dedicated binary (`cargo run -p pace-bench --bin
//! table3 -- --scale quick|full`); `run_all` drives the whole suite and
//! leaves markdown reports under `results/`. The mapping from experiment id
//! to binary lives in DESIGN.md; paper-vs-measured numbers are recorded in
//! EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod experiments;
pub mod grid;
pub mod report;
pub mod setup;

pub use grid::{run_cell, run_grid, CellResult};
pub use report::{fmt, Report, Table};
pub use setup::{Ctx, ExpScale};
