//! Diagnostic: sweeps victim update strength to find the regime where benign
//! (Random) queries barely move the model but PACE's targeted queries do —
//! the qualitative signature of the paper's Tables/Figures.

use pace_bench::{run_cell, ExpScale};
use pace_ce::CeModelType;
use pace_core::AttackMethod;
use pace_data::DatasetKind;

fn main() {
    let methods = [
        AttackMethod::Clean,
        AttackMethod::Random,
        AttackMethod::LbS,
        AttackMethod::Greedy,
        AttackMethod::LbG,
        AttackMethod::Pace,
    ];
    for (update_lr, update_clip) in [(5e-3f32, 5.0f32), (1e-2, 5.0), (1e-2, 20.0)] {
        for seed in [0xca11u64, 0xca22, 0xca33] {
            let mut scale = ExpScale::quick();
            scale.ce.update_lr = update_lr;
            scale.ce.update_clip = update_clip;
            scale.pipeline.attack.unroll_lr = update_lr;
            scale.pipeline.attack.sync_every = usize::MAX;
            scale.pipeline.attack.seed = seed;
            let cells = run_cell(&scale, DatasetKind::Dmv, CeModelType::Fcn, &methods, seed);
            print!("lr={update_lr:<6} clip={update_clip:<4} seed={seed:x}");
            for c in &cells {
                print!(
                    " | {} x{:7.2}",
                    c.method.name(),
                    c.outcome.qerror_multiple()
                );
            }
            println!();
        }
    }
    // Dump a PACE objective curve for the chosen setting.
    let mut scale = ExpScale::quick();
    scale.ce.update_lr = 2e-2;
    scale.ce.update_clip = 10.0;
    scale.pipeline.attack.unroll_lr = 2e-2;
    scale.pipeline.attack.sync_every = usize::MAX;
    let cells = run_cell(
        &scale,
        DatasetKind::Dmv,
        CeModelType::Fcn,
        &[AttackMethod::Pace],
        0xca12,
    );
    println!(
        "PACE black-box: x{:.1}  curve tail {:?}",
        cells[0].outcome.qerror_multiple(),
        &cells[0].outcome.objective_curve
            [cells[0].outcome.objective_curve.len().saturating_sub(3)..]
    );
    scale.pipeline.white_box = true;
    let cells = run_cell(
        &scale,
        DatasetKind::Dmv,
        CeModelType::Fcn,
        &[AttackMethod::Pace],
        0xca12,
    );
    println!("PACE white-box: x{:.1}", cells[0].outcome.qerror_multiple());
}
