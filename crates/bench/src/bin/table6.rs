//! Regenerates the paper's table6 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::table6(&scale);
}
