//! Diagnostic: per-type single-query inference latency (the speculation
//! fingerprint) and accuracy-residual separation.

use pace_bench::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_data::DatasetKind;
use std::time::Instant;

fn main() {
    let scale = ExpScale::quick();
    for kind in [DatasetKind::Dmv, DatasetKind::Tpch] {
        println!("== {} ==", kind.name());
        let ctx = Ctx::new(kind, &scale, 0x1a7);
        let probes: Vec<Vec<f32>> = ctx
            .test
            .iter()
            .take(20)
            .map(|lq| pace_workload::QueryEncoder::new(&ctx.ds).encode(&lq.query))
            .collect();
        for ty in CeModelType::all() {
            let model = ctx.train_victim_model(ty, scale.ce, 0x1a7 ^ ty as u64);
            // Warm up.
            for p in &probes {
                let _ = model.estimate_encoded_batch(std::slice::from_ref(p));
            }
            let mut best = f64::INFINITY;
            let mut mean = 0.0;
            let reps = 5;
            for _ in 0..reps {
                let t0 = Instant::now();
                for p in &probes {
                    let _ = model.estimate_encoded_batch(std::slice::from_ref(p));
                }
                let dt = t0.elapsed().as_secs_f64() / probes.len() as f64;
                best = best.min(dt);
                mean += dt / reps as f64;
            }
            println!(
                "{:>9}: min {:8.2}µs mean {:8.2}µs",
                ty.name(),
                best * 1e6,
                mean * 1e6
            );
        }
    }
}
