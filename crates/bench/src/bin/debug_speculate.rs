//! Diagnostic: speculation confusion matrix and similarity vectors.

use pace_bench::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_core::{speculate_model_type, SpeculationConfig};
use pace_data::DatasetKind;

fn main() {
    let scale = ExpScale::quick();
    for kind in [DatasetKind::Tpch, DatasetKind::Dmv] {
        println!("== {} ==", kind.name());
        for ty in CeModelType::all() {
            let ctx = Ctx::new(kind, &scale, 0xdeb5);
            let model = ctx.train_victim_model(ty, scale.ce, 0xdeb5 ^ (ty as u64));
            let victim = ctx.victim(model);
            let k = ctx.knowledge();
            let cfg = SpeculationConfig {
                seed: 0xdeb5,
                ..scale.pipeline.speculation.clone()
            };
            let result = speculate_model_type(&victim, &k, &cfg).expect("speculation completes");
            print!("bb={:<9} -> {:<9} |", ty.name(), result.speculated.name());
            for (cty, sim) in &result.similarities {
                print!(" {} {:+.3}", cty.name(), sim);
            }
            println!();
        }
    }
}
