//! Regenerates the paper's fig15 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::fig15(&scale);
}
