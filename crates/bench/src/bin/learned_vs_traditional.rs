//! Extension: learned vs traditional estimators under poisoning.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::learned_vs_traditional(&scale);
}
