//! Ablates this reproduction's design choices. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::design_ablation(&scale);
}
