//! Regenerates the paper's fig6_9 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::fig6_9(&scale);
}
