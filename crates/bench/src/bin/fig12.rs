//! Regenerates the paper's fig12 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::fig12(&scale);
}
