//! Runs every experiment in sequence, leaving one markdown report per
//! table/figure under `results/`. Usage: `--scale quick|full`.

use std::time::Instant;

type Experiment = (&'static str, fn(&pace_bench::ExpScale));

fn main() {
    let scale = pace_bench::ExpScale::from_args();
    let experiments: Vec<Experiment> = vec![
        ("fig6_9", pace_bench::experiments::fig6_9),
        ("table3", pace_bench::experiments::table3),
        ("table4", pace_bench::experiments::table4),
        ("table5", pace_bench::experiments::table5),
        ("table6", pace_bench::experiments::table6),
        ("table7", pace_bench::experiments::table7),
        ("table8", pace_bench::experiments::table8),
        ("table9", pace_bench::experiments::table9),
        ("table10", pace_bench::experiments::table10),
        ("fig10", pace_bench::experiments::fig10),
        ("fig11", pace_bench::experiments::fig11),
        ("fig12", pace_bench::experiments::fig12),
        ("fig13", pace_bench::experiments::fig13),
        ("fig14", pace_bench::experiments::fig14),
        ("fig15", pace_bench::experiments::fig15),
        ("design_ablation", pace_bench::experiments::design_ablation),
        (
            "learned_vs_traditional",
            pace_bench::experiments::learned_vs_traditional,
        ),
    ];
    let t0 = Instant::now();
    for (name, f) in experiments {
        let t = Instant::now();
        eprintln!(">>> running {name} ({})", scale.name);
        f(&scale);
        eprintln!(">>> {name} finished in {:.1}s", t.elapsed().as_secs_f64());
    }
    eprintln!(
        ">>> full suite finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
