//! Regenerates the paper's table7 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::table7(&scale);
}
