//! Diagnostic: clean victim quality per dataset/model under the experiment
//! workloads.

use pace_bench::{Ctx, ExpScale};
use pace_ce::{CeModelType, EncodedWorkload};
use pace_data::DatasetKind;
use pace_workload::{QErrorSummary, QueryEncoder};

fn main() {
    for epochs in [30usize, 60] {
        let mut scale = ExpScale::quick();
        scale.ce.epochs = epochs;
        println!("== epochs {epochs} ==");
        for kind in DatasetKind::all() {
            let ctx = Ctx::new(kind, &scale, 0xdbc);
            let enc = QueryEncoder::new(&ctx.ds);
            let test = EncodedWorkload::from_workload(&enc, &ctx.test);
            print!("{:>6}:", kind.name());
            for ty in [CeModelType::Fcn, CeModelType::Mscn, CeModelType::Lstm] {
                let model = ctx.train_victim_model(ty, scale.ce, 0xdbc ^ ty as u64);
                let s = QErrorSummary::from_samples(&model.evaluate(&test));
                print!("  {} mean {:7.2} p95 {:8.2}", ty.name(), s.mean, s.p95);
            }
            println!();
        }
    }
}
