//! Regenerates the paper's fig10 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::fig10(&scale);
}
