//! Regenerates the paper's fig14 result. Usage: `--scale quick|full`.
fn main() {
    let scale = pace_bench::ExpScale::from_args();
    pace_bench::experiments::fig14(&scale);
}
