//! Markdown report emission shared by all experiment binaries.
//!
//! Every binary prints its table(s) to stdout and also appends them to
//! `results/<name>.md`, so `run_all` leaves a browsable record next to
//! EXPERIMENTS.md.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A markdown table under construction.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a caption and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }
}

/// Collects an experiment's tables and notes, then prints and persists them.
pub struct Report {
    name: String,
    sections: Vec<String>,
}

impl Report {
    /// Starts a report for the experiment `name` (e.g. `"table3"`).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            sections: Vec::new(),
        }
    }

    /// Adds a finished table.
    pub fn table(&mut self, t: &Table) {
        self.sections.push(t.render());
    }

    /// Adds a free-form note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.sections.push(format!("\n{}\n", text.into()));
    }

    /// Prints to stdout and writes `results/<name>.md`. Returns the path.
    pub fn finish(self) -> PathBuf {
        let body = format!("## Experiment: {}\n{}", self.name, self.sections.join(""));
        println!("{body}");
        let dir = PathBuf::from("results");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.md", self.name));
        if let Err(e) = fs::write(&path, &body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

/// Formats a float compactly: 3 significant-ish digits, scientific for big
/// magnitudes — matches how the paper prints Q-errors.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 10_000.0 {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(3.1459), "3.15");
        assert_eq!(fmt(42.4242), "42.4");
        assert_eq!(fmt(512.3), "512");
        assert!(fmt(123456.0).contains('e'));
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }
}
