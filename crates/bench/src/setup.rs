//! Shared experiment setup: datasets, workloads, victims, and the
//! quick/full scaling knobs every experiment binary accepts.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    AttackConfig, AttackerKnowledge, PipelineConfig, SpeculationConfig, SurrogateConfig, Victim,
};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{
    generate_from_templates, generate_queries, templates_for, Query, QueryEncoder, Workload,
    WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment sizing. `quick` finishes the full suite in minutes; `full`
/// uses larger data and workloads (closer to the paper's proportions, still
/// laptop-sized — see DESIGN.md on scale substitution).
#[derive(Clone, Debug)]
pub struct ExpScale {
    /// Human-readable name (`"quick"`/`"full"`).
    pub name: &'static str,
    /// Dataset row scale.
    pub data: Scale,
    /// Victim training-workload size (paper: 10000).
    pub train_queries: usize,
    /// Test-workload size (paper: 1000).
    pub test_queries: usize,
    /// Victim/candidate model hyperparameters.
    pub ce: CeConfig,
    /// Attack pipeline configuration.
    pub pipeline: PipelineConfig,
}

impl ExpScale {
    /// Fast mode: small data, short training.
    pub fn quick() -> Self {
        Self {
            name: "quick",
            data: Scale::quick(),
            train_queries: 900,
            test_queries: 150,
            ce: CeConfig::quick(),
            pipeline: PipelineConfig {
                speculation: SpeculationConfig::quick(),
                surrogate: SurrogateConfig::quick(),
                attack: AttackConfig {
                    n_poison: 45, // 5% of the training workload, like the paper
                    batch: 48,
                    iters: 30,
                    test_subset: 64,
                    ..AttackConfig::quick()
                },
                ..PipelineConfig::quick()
            },
        }
    }

    /// Full mode: the default experiment scale.
    pub fn full() -> Self {
        Self {
            name: "full",
            data: Scale::experiment(),
            train_queries: 4000,
            test_queries: 400,
            ce: CeConfig::default(),
            pipeline: PipelineConfig {
                attack: AttackConfig {
                    n_poison: 200,
                    ..AttackConfig::default()
                },
                ..PipelineConfig::default()
            },
        }
    }

    /// Parses `--scale quick|full` from argv; defaults to quick.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            Some(i) if args.get(i + 1).map(String::as_str) == Some("full") => Self::full(),
            _ => Self::quick(),
        }
    }
}

/// One dataset's experiment context: data, workloads, attacker knowledge.
pub struct Ctx {
    /// Which dataset.
    pub kind: DatasetKind,
    /// The materialized dataset.
    pub ds: Dataset,
    /// Workload-shape parameters used throughout.
    pub spec: WorkloadSpec,
    /// The historical workload the victim trained on (queries only).
    pub history: Vec<Query>,
    /// Labeled training workload.
    pub train: Workload,
    /// Labeled test workload.
    pub test: Workload,
}

impl Ctx {
    /// Builds the context for one dataset at the given scale.
    pub fn new(kind: DatasetKind, scale: &ExpScale, seed: u64) -> Self {
        let ds = build(kind, scale.data, seed);
        let spec = if kind == DatasetKind::Dmv {
            WorkloadSpec::single_table()
        } else {
            WorkloadSpec {
                max_join_tables: 3,
                ..WorkloadSpec::default()
            }
        };
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        // DMV/TPC-H workloads are random over the schema; IMDB/STATS follow
        // the JOB / STATS-CEB template families — mirroring the paper's
        // workload construction (Section 7.1).
        let templates = templates_for(&ds);
        let gen = |n: usize, rng: &mut StdRng| -> Vec<Query> {
            match &templates {
                Some(t) => generate_from_templates(&ds, t, &spec, rng, n),
                None => generate_queries(&ds, &spec, rng, n),
            }
        };
        let train_q = gen(scale.train_queries, &mut rng);
        let train = exec.label_nonzero(train_q);
        let test_q = gen(scale.test_queries, &mut rng);
        let test = exec.label_nonzero(test_q);
        let history = train.iter().map(|lq| lq.query.clone()).collect();
        Self {
            kind,
            ds,
            spec,
            history,
            train,
            test,
        }
    }

    /// The attacker's public-knowledge bundle.
    pub fn knowledge(&self) -> AttackerKnowledge {
        AttackerKnowledge::from_public(&self.ds, self.spec.clone())
    }

    /// Trains a victim model of the given type on the training workload.
    pub fn train_victim_model(&self, ty: CeModelType, ce: CeConfig, seed: u64) -> CeModel {
        let data = EncodedWorkload::from_workload(&QueryEncoder::new(&self.ds), &self.train);
        let mut model = CeModel::new(ty, &self.ds, ce, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea);
        model
            .train(&data, &mut rng)
            .expect("victim training converges");
        model
    }

    /// Wraps a trained model as a live victim.
    pub fn victim(&self, model: CeModel) -> Victim<'_> {
        Victim::new(model, Executor::new(&self.ds), self.history.clone())
    }
}
