//! Ablations and overhead experiments: Figure 12 (basic vs accelerated),
//! Figure 13 (anomaly-detector threshold), Table 8 (poisoning-query count),
//! Tables 9/10 (overhead).

use crate::report::{fmt, Report, Table};
use crate::setup::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_core::{run_attack, AttackMethod, AttackOutcome};
use pace_data::DatasetKind;
use pace_runtime as pool;

fn attack_once(
    scale: &ExpScale,
    kind: DatasetKind,
    ty: CeModelType,
    method: AttackMethod,
    mutate: impl FnOnce(&mut pace_core::PipelineConfig),
    seed: u64,
) -> AttackOutcome {
    let ctx = Ctx::new(kind, scale, seed);
    let model = ctx.train_victim_model(ty, scale.ce, seed ^ 0x77);
    let mut victim = ctx.victim(model);
    let k = ctx.knowledge();
    let mut cfg = scale.pipeline.clone();
    cfg.surrogate_type = Some(ty);
    mutate(&mut cfg);
    run_attack(&mut victim, method, &ctx.test, &k, &cfg).expect("attack campaign completes")
}

/// Figure 12: PACE-basic vs PACE-optimized — attack effectiveness and
/// generator-training time on DMV.
pub fn fig12(scale: &ExpScale) {
    let models = if scale.name == "full" {
        vec![CeModelType::Fcn, CeModelType::FcnPool, CeModelType::Mscn]
    } else {
        vec![CeModelType::Fcn, CeModelType::Mscn]
    };
    let mut rows: Vec<(CeModelType, AttackOutcome, AttackOutcome)> =
        pool::par_map(&models, |_, &ty| {
            let basic = attack_once(
                scale,
                DatasetKind::Dmv,
                ty,
                AttackMethod::PaceBasic,
                |_| {},
                0xf12,
            );
            let optimized = attack_once(
                scale,
                DatasetKind::Dmv,
                ty,
                AttackMethod::Pace,
                |_| {},
                0xf12,
            );
            (ty, basic, optimized)
        });
    rows.sort_by_key(|r| r.0.name());

    let mut report = Report::new(format!("fig12_{}", scale.name));
    let mut t = Table::new(
        "Figure 12 — PACE-basic vs PACE-optimized (DMV)",
        &[
            "CE model",
            "Variant",
            "Poisoned mean Q-error",
            "Generator-training time (s)",
        ],
    );
    let mut speedups = Vec::new();
    for (ty, basic, optimized) in &rows {
        t.row(vec![
            ty.name().into(),
            "basic".into(),
            fmt(basic.poisoned.mean),
            fmt(basic.train_seconds),
        ]);
        t.row(vec![
            ty.name().into(),
            "optimized".into(),
            fmt(optimized.poisoned.mean),
            fmt(optimized.train_seconds),
        ]);
        speedups.push(basic.train_seconds / optimized.train_seconds.max(1e-9));
    }
    report.table(&t);
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    report.note(format!(
        "Average training speedup of the optimized algorithm: {avg:.1}× (paper: 9.7×)."
    ));
    report.finish();
}

/// Figure 13: detector-threshold sweep — poisoning effectiveness vs the
/// JS divergence of poisoning queries (DMV, FCN).
pub fn fig13(scale: &ExpScale) {
    let thresholds = [0.05f32, 0.075, 0.10];
    // `None` = detector disabled; `Some(δ)` = detector at threshold δ.
    let variants: Vec<Option<f32>> = std::iter::once(None)
        .chain(thresholds.iter().copied().map(Some))
        .collect();
    let mut rows: Vec<(String, AttackOutcome)> =
        pool::par_map(&variants, |_, &variant| match variant {
            None => {
                let o = attack_once(
                    scale,
                    DatasetKind::Dmv,
                    CeModelType::Fcn,
                    AttackMethod::PaceNoDetector,
                    |_| {},
                    0xf13,
                );
                ("without detector".into(), o)
            }
            Some(delta) => {
                let o = attack_once(
                    scale,
                    DatasetKind::Dmv,
                    CeModelType::Fcn,
                    AttackMethod::Pace,
                    |cfg| cfg.attack.detector.threshold = delta,
                    0xf13,
                );
                (format!("δ = {delta}"), o)
            }
        });
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    let mut report = Report::new(format!("fig13_{}", scale.name));
    let mut t = Table::new(
        "Figure 13 — detector threshold vs effectiveness and normality (DMV, FCN)",
        &[
            "Variant",
            "Poisoned mean Q-error",
            "JS divergence vs historical",
        ],
    );
    for (label, o) in &rows {
        t.row(vec![
            label.clone(),
            fmt(o.poisoned.mean),
            format!("{:.4}", o.divergence),
        ]);
    }
    report.table(&t);
    report.finish();
}

/// Table 8: Q-error multiple as the number of poisoning queries grows
/// (DMV and IMDB, FCN).
pub fn table8(scale: &ExpScale) {
    let base = scale.pipeline.attack.n_poison;
    let counts = [base / 2, base, base * 2, base * 4];
    let datasets = [DatasetKind::Dmv, DatasetKind::Imdb];
    let cells: Vec<(DatasetKind, usize)> = datasets
        .iter()
        .flat_map(|&kind| counts.iter().map(move |&n| (kind, n)))
        .collect();
    let rows: Vec<(DatasetKind, usize, f64)> = pool::par_map(&cells, |_, &(kind, n)| {
        let o = attack_once(
            scale,
            kind,
            CeModelType::Fcn,
            AttackMethod::Pace,
            |cfg| cfg.attack.n_poison = n.max(1),
            0x7ab8,
        );
        (kind, n, o.qerror_multiple())
    });

    let mut report = Report::new(format!("table8_{}", scale.name));
    let mut t = Table::new(
        format!("Table 8 — Q-error multiple vs number of poisoning queries (default {base})"),
        &[
            "Dataset",
            &half(base),
            &full_s(base),
            &twice(base),
            &quad(base),
        ],
    );
    for kind in datasets {
        let mut row = vec![kind.name().to_string()];
        for &n in &counts {
            let v = rows
                .iter()
                .find(|(k, c, _)| *k == kind && *c == n)
                .expect("t8 cell")
                .2;
            row.push(fmt(v));
        }
        t.row(row);
    }
    report.table(&t);
    report.finish();
}

fn half(b: usize) -> String {
    format!("{}", b / 2)
}
fn full_s(b: usize) -> String {
    format!("{b} (default)")
}
fn twice(b: usize) -> String {
    format!("{}", b * 2)
}
fn quad(b: usize) -> String {
    format!("{}", b * 4)
}

/// Table 9: PACE overhead (training / generation / attacking seconds) for the
/// FCN victim across all four datasets.
pub fn table9(scale: &ExpScale) {
    let kinds = DatasetKind::all();
    let rows: Vec<(DatasetKind, AttackOutcome)> = pool::par_map(&kinds, |_, &kind| {
        let o = attack_once(
            scale,
            kind,
            CeModelType::Fcn,
            AttackMethod::Pace,
            |_| {},
            0x7ab9,
        );
        (kind, o)
    });

    let mut report = Report::new(format!("table9_{}", scale.name));
    let mut t = Table::new(
        "Table 9 — PACE overhead on FCN (seconds)",
        &["Dataset", "Training", "Generation", "Attacking"],
    );
    for kind in DatasetKind::all() {
        let (_, o) = rows.iter().find(|(k, _)| *k == kind).expect("t9 cell");
        t.row(vec![
            kind.name().into(),
            format!("{:.2}", o.train_seconds),
            format!("{:.4}", o.generate_seconds),
            format!("{:.4}", o.attack_seconds),
        ]);
    }
    report.table(&t);
    report.finish();
}

/// Table 10: overhead vs the number of poisoning queries (DMV, FCN).
pub fn table10(scale: &ExpScale) {
    let base = scale.pipeline.attack.n_poison;
    let counts = [base / 2, base, base * 2];
    let mut rows: Vec<(usize, AttackOutcome)> = pool::par_map(&counts, |_, &n| {
        let o = attack_once(
            scale,
            DatasetKind::Dmv,
            CeModelType::Fcn,
            AttackMethod::Pace,
            |cfg| cfg.attack.n_poison = n.max(1),
            0x7a10,
        );
        (n, o)
    });
    rows.sort_by_key(|r| r.0);

    let mut report = Report::new(format!("table10_{}", scale.name));
    let mut t = Table::new(
        "Table 10 — PACE overhead vs number of poisoning queries (DMV, FCN; seconds)",
        &["#Queries", "Training", "Generation", "Attacking"],
    );
    for (n, o) in &rows {
        t.row(vec![
            format!("{n}"),
            format!("{:.2}", o.train_seconds),
            format!("{:.4}", o.generate_seconds),
            format!("{:.4}", o.attack_seconds),
        ]);
    }
    report.table(&t);
    report.note(
        "Training time is constant in the query count; generation and attacking scale with it \
         (paper Section 7.5)."
            .to_string(),
    );
    report.finish();
}
