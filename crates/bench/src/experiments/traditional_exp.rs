//! Extension experiment (beyond the paper): learned vs traditional
//! estimators under poisoning. Histograms and samplers never train on
//! queries, so PACE's attack channel does not exist for them — quantifying
//! the security/accuracy trade-off the paper's introduction gestures at.

use crate::report::{fmt, Report, Table};
use crate::setup::{Ctx, ExpScale};
use pace_ce::{CeModelType, EncodedWorkload};
use pace_core::{run_attack, AttackMethod};
use pace_data::DatasetKind;
use pace_engine::{CardEstimator, HistogramEstimator, SamplingEstimator};
use pace_runtime as pool;
use pace_workload::{q_error, QErrorSummary, QueryEncoder, Workload};

fn summary_for(est: &dyn CardEstimator, test: &Workload) -> QErrorSummary {
    let samples: Vec<f64> = test
        .iter()
        .map(|lq| q_error(est.estimate(&lq.query), lq.cardinality as f64))
        .collect();
    QErrorSummary::from_samples(&samples)
}

/// Runs the comparison on DMV and TPC-H: clean and post-PACE mean Q-error of
/// the learned FCN vs histogram and sampling estimators.
pub fn learned_vs_traditional(scale: &ExpScale) {
    let datasets = [DatasetKind::Dmv, DatasetKind::Tpch];
    type Row = (DatasetKind, f64, f64, f64, f64);
    let rows: Vec<Row> = pool::par_map(&datasets, |_, &kind| {
        let ctx = Ctx::new(kind, scale, 0x7d1);
        let hist = HistogramEstimator::build(&ctx.ds, 64);
        let samp = SamplingEstimator::build(&ctx.ds, 0.1, 0x7d2);
        let hist_q = summary_for(&hist, &ctx.test).mean;
        let samp_q = summary_for(&samp, &ctx.test).mean;

        let model = ctx.train_victim_model(CeModelType::Fcn, scale.ce, 0x7d3);
        let clean_q = {
            let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ctx.ds), &ctx.test);
            QErrorSummary::from_samples(&model.evaluate(&data)).mean
        };
        let mut victim = ctx.victim(model);
        let k = ctx.knowledge();
        let mut cfg = scale.pipeline.clone();
        cfg.surrogate_type = Some(CeModelType::Fcn);
        let outcome = run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
            .expect("attack campaign completes");
        (kind, clean_q, outcome.poisoned.mean, hist_q, samp_q)
    });

    let mut report = Report::new(format!("learned_vs_traditional_{}", scale.name));
    let mut t = Table::new(
        "Extension — mean Q-error: learned FCN vs traditional estimators under PACE",
        &[
            "Dataset",
            "FCN clean",
            "FCN poisoned",
            "Histogram (AVI)",
            "Sampling 10%",
        ],
    );
    for kind in datasets {
        let &(_, clean, poisoned, hist, samp) = rows.iter().find(|r| r.0 == kind).expect("lvt row");
        t.row(vec![
            kind.name().into(),
            fmt(clean),
            fmt(poisoned),
            fmt(hist),
            fmt(samp),
        ]);
    }
    report.table(&t);
    report.note(
        "Histograms and samplers are untouched by the attack (no query-training channel): \
         the learned model is more accurate clean, but strictly worse than both once poisoned. \
         This quantifies the robustness/accuracy trade-off the paper's introduction raises."
            .to_string(),
    );
    report.finish();
}
