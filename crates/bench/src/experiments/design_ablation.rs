//! Ablation of this reproduction's own design choices (beyond the paper's
//! figures): straight-through quantization of generated encodings, clipped
//! virtual updates, generator best-checkpointing, and surrogate syncing.
//! DESIGN.md calls these out as the levers that make the bivariate
//! optimization transfer to a deployed victim.

use crate::report::{fmt, Report, Table};
use crate::setup::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_core::{run_attack, AttackMethod, PipelineConfig};
use pace_data::DatasetKind;
use pace_runtime as pool;

/// Runs the design-choice ablation grid on DMV/FCN.
pub fn design_ablation(scale: &ExpScale) {
    type Variant = (&'static str, fn(&mut PipelineConfig));
    let variants: Vec<Variant> = vec![
        ("full PACE", |_| {}),
        ("w/o straight-through quantization", |c| {
            c.attack.ablate_quantization = true
        }),
        ("w/o best-checkpointing", |c| {
            c.attack.ablate_checkpoint = true
        }),
        ("w/ surrogate sync every 5 iters", |c| {
            c.attack.sync_every = 5
        }),
        ("w/o detector confrontation", |c| {
            c.attack.use_detector = false
        }),
        ("white-box surrogate (upper bound)", |c| c.white_box = true),
    ];
    let rows: Vec<(usize, f64, f64)> = pool::par_map(&variants, |i, &(_, mutate)| {
        // Average over three seeds: these deltas are smaller than the
        // headline effects, so single runs are too noisy.
        let mut mult = 0.0;
        let mut div = 0.0;
        let seeds = [0xab1au64, 0xab2b, 0xab3c];
        for &seed in &seeds {
            let ctx = Ctx::new(DatasetKind::Dmv, scale, seed);
            let model = ctx.train_victim_model(CeModelType::Fcn, scale.ce, seed ^ 0x9);
            let mut victim = ctx.victim(model);
            let k = ctx.knowledge();
            let mut cfg = scale.pipeline.clone();
            cfg.surrogate_type = Some(CeModelType::Fcn);
            cfg.attack.seed = seed;
            mutate(&mut cfg);
            let o = run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
                .expect("attack campaign completes");
            mult += o.qerror_multiple();
            div += o.divergence;
        }
        (i, mult / seeds.len() as f64, div / seeds.len() as f64)
    });

    let mut report = Report::new(format!("design_ablation_{}", scale.name));
    let mut t = Table::new(
        "Design-choice ablation (DMV, FCN; mean of 3 seeds)",
        &["Variant", "Q-error multiple", "JS divergence"],
    );
    for (i, mult, div) in &rows {
        t.row(vec![variants[*i].0.into(), fmt(*mult), format!("{div:.4}")]);
    }
    report.table(&t);
    report.note(
        "The white-box row bounds what a perfect surrogate could achieve; the gap to \
         'full PACE' is the black-box transfer cost."
            .to_string(),
    );
    report.finish();
}
