//! Surrogate-validation experiments: Table 6 (speculation accuracy), Table 7
//! (cost of mis-speculation), Figure 10 (training strategy Eq. 6 vs Eq. 7)
//! and Figure 11 (hyperparameter mismatch).

use crate::report::{fmt, Report, Table};
use crate::setup::{Ctx, ExpScale};
use pace_ce::{CeConfig, CeModelType};
use pace_core::{
    run_attack, speculate_model_type, AttackMethod, ImitationStrategy, SpeculationConfig,
};
use pace_data::DatasetKind;
use pace_runtime as pool;

/// Speculation repetitions per (dataset, type) cell (paper: 20).
fn runs_for(scale: &ExpScale) -> usize {
    if scale.name == "full" {
        8
    } else {
        3
    }
}

/// Table 6: accuracy of black-box model-type speculation.
pub fn table6(scale: &ExpScale) {
    let runs = runs_for(scale);
    let kinds = DatasetKind::all();
    let results: Vec<(DatasetKind, CeModelType, usize, usize)> =
        pool::par_map(&kinds, |_, &kind| {
            let mut local = Vec::new();
            for ty in CeModelType::all() {
                let mut correct = 0;
                for run in 0..runs {
                    let seed = 0x7ab6 ^ (run as u64 * 131) ^ (ty as u64);
                    let ctx = Ctx::new(kind, scale, seed);
                    let model = ctx.train_victim_model(ty, scale.ce, seed ^ 0x51);
                    let victim = ctx.victim(model);
                    let k = ctx.knowledge();
                    let spec_cfg = SpeculationConfig {
                        seed,
                        ..scale.pipeline.speculation.clone()
                    };
                    let result = speculate_model_type(&victim, &k, &spec_cfg)
                        .expect("speculation completes");
                    if result.speculated == ty {
                        correct += 1;
                    }
                }
                local.push((kind, ty, correct, runs));
            }
            local
        })
        .into_iter()
        .flatten()
        .collect();

    let mut report = Report::new(format!("table6_{}", scale.name));
    let mut t = Table::new(
        format!("Table 6 — speculation accuracy over {runs} black boxes per cell"),
        &[
            "Dataset", "FCN", "FCN+Pool", "MSCN", "RNN", "LSTM", "Linear",
        ],
    );
    let mut total_correct = 0;
    let mut total_runs = 0;
    for kind in DatasetKind::all() {
        let mut row = vec![kind.name().to_string()];
        for ty in CeModelType::all() {
            let &(_, _, correct, n) = results
                .iter()
                .find(|(k, m, _, _)| *k == kind && *m == ty)
                .expect("t6 cell");
            total_correct += correct;
            total_runs += n;
            row.push(format!("{}%", 100 * correct / n));
        }
        t.row(row);
    }
    report.table(&t);
    report.note(format!(
        "Average speculation accuracy: {}% (paper: 87.5%).",
        100 * total_correct / total_runs.max(1)
    ));
    report.finish();
}

/// Table 7: drop in attack effectiveness when the surrogate type is wrong
/// (DMV; 6 victim types × 6 surrogate types).
pub fn table7(scale: &ExpScale) {
    let victim_tys = CeModelType::all();
    let results: Vec<(CeModelType, CeModelType, f64)> =
        pool::par_map(&victim_tys, |_, &victim_ty| {
            let ctx = Ctx::new(DatasetKind::Dmv, scale, 0x7ab7);
            let model = ctx.train_victim_model(victim_ty, scale.ce, 0x7ab7 ^ (victim_ty as u64));
            let snapshot = model.params().snapshot();
            let mut victim = ctx.victim(model);
            let k = ctx.knowledge();
            let mut local = Vec::new();
            for surrogate_ty in CeModelType::all() {
                victim.model_mut().params_mut().restore(&snapshot);
                let mut cfg = scale.pipeline.clone();
                cfg.surrogate_type = Some(surrogate_ty);
                let outcome = run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
                    .expect("attack campaign completes");
                local.push((victim_ty, surrogate_ty, outcome.qerror_multiple()));
            }
            local
        })
        .into_iter()
        .flatten()
        .collect();

    let mut report = Report::new(format!("table7_{}", scale.name));
    let mut t = Table::new(
        "Table 7 — attack-effectiveness decrease under mis-speculated surrogate type (DMV)",
        &[
            "BB \\ Surrogate",
            "FCN",
            "FCN+Pool",
            "MSCN",
            "RNN",
            "LSTM",
            "Linear",
        ],
    );
    let multiple = |v: CeModelType, s: CeModelType| -> f64 {
        results
            .iter()
            .find(|(a, b, _)| *a == v && *b == s)
            .expect("t7 cell")
            .2
    };
    let mut decreases = Vec::new();
    for v in CeModelType::all() {
        let diag = multiple(v, v);
        let mut row = vec![v.name().to_string()];
        for s in CeModelType::all() {
            let m = multiple(v, s);
            let dec = ((diag - m) / diag.max(1e-9) * 100.0).max(0.0);
            if v != s {
                decreases.push(dec);
            }
            row.push(if v == s {
                "0%".into()
            } else {
                format!("{dec:.1}%")
            });
        }
        t.row(row);
    }
    report.table(&t);
    let avg = decreases.iter().sum::<f64>() / decreases.len().max(1) as f64;
    report.note(format!(
        "Average off-diagonal decrease: {avg:.1}% (paper: 8.2%)."
    ));
    report.finish();
}

/// Figure 10: attack effectiveness of the combined imitation loss (Eq. 7)
/// vs direct imitation (Eq. 6), on DMV.
pub fn fig10(scale: &ExpScale) {
    let models = if scale.name == "full" {
        CeModelType::all().to_vec()
    } else {
        vec![CeModelType::Fcn, CeModelType::Mscn, CeModelType::Rnn]
    };
    let mut report = Report::new(format!("fig10_{}", scale.name));
    let mut t = Table::new(
        "Figure 10 — poisoned mean Q-error: Eq. 7 (PACE) vs Eq. 6 (Direct Imitation), DMV",
        &[
            "CE model",
            "Clean",
            "Direct (Eq. 6)",
            "Combined (Eq. 7)",
            "Gain %",
        ],
    );
    let mut rows: Vec<(CeModelType, f64, f64, f64)> = pool::par_map(&models, |_, &ty| {
        let ctx = Ctx::new(DatasetKind::Dmv, scale, 0xf10);
        let model = ctx.train_victim_model(ty, scale.ce, 0xf10 ^ (ty as u64));
        let snapshot = model.params().snapshot();
        let mut victim = ctx.victim(model);
        let k = ctx.knowledge();
        let mut by_strategy = [0.0f64; 2];
        let mut clean = 0.0;
        for (i, strategy) in [ImitationStrategy::Direct, ImitationStrategy::Combined]
            .iter()
            .enumerate()
        {
            victim.model_mut().params_mut().restore(&snapshot);
            let mut cfg = scale.pipeline.clone();
            cfg.surrogate_type = Some(ty);
            cfg.surrogate.strategy = *strategy;
            let outcome = run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
                .expect("attack campaign completes");
            by_strategy[i] = outcome.poisoned.mean;
            clean = outcome.clean.mean;
        }
        (ty, clean, by_strategy[0], by_strategy[1])
    });
    rows.sort_by_key(|r| r.0.name());
    for (ty, clean, direct, combined) in rows {
        let gain = (combined - direct) / direct.max(1e-9) * 100.0;
        t.row(vec![
            ty.name().into(),
            fmt(clean),
            fmt(direct),
            fmt(combined),
            format!("{gain:+.1}%"),
        ]);
    }
    report.table(&t);
    report.finish();
}

/// Figure 11: attack effectiveness when the black box's hyperparameters
/// (layer count, hidden width) differ from the surrogate's defaults (IMDB).
pub fn fig11(scale: &ExpScale) {
    let mut report = Report::new(format!("fig11_{}", scale.name));
    let base_layers = scale.ce.layers;
    let base_hidden = scale.ce.hidden;

    let run_with = |ce: CeConfig, seed: u64, scale: &ExpScale| -> f64 {
        let ctx = Ctx::new(DatasetKind::Imdb, scale, 0xf11);
        let model = ctx.train_victim_model(CeModelType::Fcn, ce, seed);
        let mut victim = ctx.victim(model);
        let k = ctx.knowledge();
        let mut cfg = scale.pipeline.clone();
        cfg.surrogate_type = Some(CeModelType::Fcn);
        // The surrogate keeps the attacker's default hyperparameters.
        run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
            .expect("attack campaign completes")
            .qerror_multiple()
    };

    /// One fig-11 sweep point: vary the black box's layer count or its
    /// hidden-width scale (both grids run in one pool fan-out).
    enum Point {
        Layers(usize),
        HiddenScale(f64),
    }
    let points: Vec<Point> = [1usize, 2, 3, 4]
        .into_iter()
        .map(Point::Layers)
        .chain([0.5f64, 1.0, 2.0, 4.0].into_iter().map(Point::HiddenScale))
        .collect();
    /// Measurement for one sweep point: a layer-grid row or a hidden-grid row.
    type Measured = (Option<(usize, f64)>, Option<(f64, f64)>);
    let measured: Vec<Measured> = pool::par_map(&points, |_, point| match *point {
        Point::Layers(layers) => {
            let ce = CeConfig { layers, ..scale.ce };
            let m = run_with(ce, 0x111 ^ layers as u64, scale);
            (Some((layers, m)), None)
        }
        Point::HiddenScale(hs) => {
            let hidden = ((base_hidden as f64 * hs) as usize).max(4);
            let ce = CeConfig { hidden, ..scale.ce };
            let m = run_with(ce, 0x112 ^ hidden as u64, scale);
            (None, Some((hs, m)))
        }
    });
    let mut layer_rows: Vec<(usize, f64)> = measured.iter().filter_map(|r| r.0).collect();
    layer_rows.sort_by_key(|a| a.0);
    let mut hidden_rows: Vec<(f64, f64)> = measured.iter().filter_map(|r| r.1).collect();
    hidden_rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    let base_l = layer_rows
        .iter()
        .find(|(l, _)| *l == base_layers)
        .map_or(1.0, |(_, m)| *m);
    let mut t = Table::new(
        "Figure 11(a) — relative effectiveness vs black-box layer count (FCN, IMDB)",
        &["BB layers", "Q-error multiple", "Relative to matched"],
    );
    for (l, m) in &layer_rows {
        t.row(vec![l.to_string(), fmt(*m), format!("{:.2}", m / base_l)]);
    }
    report.table(&t);

    let base_h = hidden_rows
        .iter()
        .find(|(s, _)| (*s - 1.0).abs() < 1e-9)
        .map_or(1.0, |(_, m)| *m);
    let mut t = Table::new(
        "Figure 11(b) — relative effectiveness vs black-box hidden-width scale (FCN, IMDB)",
        &["BB hidden ×", "Q-error multiple", "Relative to matched"],
    );
    for (s, m) in &hidden_rows {
        t.row(vec![format!("{s}"), fmt(*m), format!("{:.2}", m / base_h)]);
    }
    report.table(&t);
    report.finish();
}
