//! Table 5 — end-to-end execution time of multi-table join queries when the
//! optimizer plans with each (possibly poisoned) CE model.

use crate::report::{fmt, Report, Table};
use crate::setup::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_core::{run_attack, AttackMethod};
use pace_data::DatasetKind;
use pace_engine::{total_latency, CostModel, Executor};
use pace_runtime as pool;
use pace_workload::{generate_queries, Query, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of multi-table join queries executed end to end (paper: 20).
pub const E2E_QUERIES: usize = 20;

struct E2eCell {
    dataset: DatasetKind,
    model: CeModelType,
    method: AttackMethod,
    latency_s: f64,
}

/// Generates `n` heavy queries joining at least three tables with wide
/// predicates — the class whose plans are sensitive to estimation quality.
fn join_queries(ctx: &Ctx, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = WorkloadSpec {
        max_join_tables: 4,
        join_size_decay: 1.0,
        width_range: (0.25, 0.9),
        max_predicates: 2,
        ..ctx.spec.clone()
    };
    let mut out = Vec::new();
    while out.len() < n {
        for q in generate_queries(&ctx.ds, &spec, &mut rng, n * 3) {
            if q.tables.len() >= 3 && out.len() < n {
                out.push(q);
            }
        }
    }
    out
}

/// Runs Table 5: 5 neural CE models × 6 methods × {IMDB, TPC-H, STATS}.
pub fn table5(scale: &ExpScale) {
    let datasets = [DatasetKind::Imdb, DatasetKind::Tpch, DatasetKind::Stats];
    let models = [
        CeModelType::Fcn,
        CeModelType::FcnPool,
        CeModelType::Mscn,
        CeModelType::Rnn,
        CeModelType::Lstm,
    ];
    let methods = AttackMethod::headline();
    let cost = CostModel::default();

    let grid: Vec<(DatasetKind, CeModelType)> = datasets
        .iter()
        .flat_map(|&kind| models.iter().map(move |&ty| (kind, ty)))
        .collect();
    let cells: Vec<E2eCell> = pool::par_map(&grid, |_, &(kind, ty)| {
        let ctx = Ctx::new(kind, scale, 0x7ab5);
        let joins = join_queries(&ctx, E2E_QUERIES, 0xe2e);
        // The attack targets the workload that will be executed,
        // exactly as in the paper — augmented with each join
        // query's connected sub-queries, which are the estimates
        // the optimizer actually consumes when ordering joins.
        // Misestimating *those* heterogeneously is what flips
        // plans.
        let target = {
            let exec = Executor::new(&ctx.ds);
            let mut qs = joins.clone();
            for q in &joins {
                for pattern in ctx.ds.schema.connected_patterns(q.tables.len()) {
                    if pattern.len() >= 2
                        && pattern.len() < q.tables.len()
                        && pattern.iter().all(|t| q.tables.contains(t))
                    {
                        let preds = q
                            .predicates
                            .iter()
                            .copied()
                            .filter(|p| pattern.contains(&p.table))
                            .collect();
                        qs.push(Query::new(pattern, preds));
                    }
                }
            }
            exec.label(qs)
        };
        let model = ctx.train_victim_model(ty, scale.ce, 0x7ab5 ^ (ty as u64 + 1));
        let snapshot = model.params().snapshot();
        let mut victim = ctx.victim(model);
        let k = ctx.knowledge();
        let mut cfg = scale.pipeline.clone();
        cfg.surrogate_type = Some(ty);
        let mut local = Vec::new();
        for &method in &methods {
            victim.model_mut().params_mut().restore(&snapshot);
            let _ = run_attack(&mut victim, method, &target, &k, &cfg);
            let exec = Executor::new(&ctx.ds);
            let latency_s = total_latency(&joins, &exec, victim.model(), &cost);
            local.push(E2eCell {
                dataset: kind,
                model: ty,
                method,
                latency_s,
            });
        }
        local
    })
    .into_iter()
    .flatten()
    .collect();

    let mut report = Report::new(format!("table5_{}", scale.name));
    for kind in datasets {
        let mut t = Table::new(
            format!(
                "Table 5 ({}) — simulated E2E latency of {E2E_QUERIES} join queries (s)",
                kind.name()
            ),
            &["Method", "FCN", "FCN+Pool", "MSCN", "RNN", "LSTM"],
        );
        for &m in &methods {
            let mut row = vec![m.name().to_string()];
            for ty in models {
                let cell = cells
                    .iter()
                    .find(|c| c.dataset == kind && c.model == ty && c.method == m)
                    .expect("e2e cell");
                row.push(fmt(cell.latency_s));
            }
            t.row(row);
        }
        report.table(&t);
    }
    report.note(
        "Latency is cost-simulated: plans are chosen by the (poisoned) model, then charged \
         their true intermediate cardinalities (DESIGN.md, substitutions)."
            .to_string(),
    );
    report.finish();
}
