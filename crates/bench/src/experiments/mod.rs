//! One module per paper table/figure; each exposes `run`-style functions the
//! experiment binaries (and `run_all`) call.

mod ablation;
mod accuracy;
mod design_ablation;
mod dynamics;
mod e2e;
mod surrogate_exp;
mod traditional_exp;

pub use ablation::{fig12, fig13, table10, table8, table9};
pub use accuracy::{fig6_9, table3, table4};
pub use design_ablation::design_ablation;
pub use dynamics::{fig14, fig15};
pub use e2e::table5;
pub use surrogate_exp::{fig10, fig11, table6, table7};
pub use traditional_exp::learned_vs_traditional;
