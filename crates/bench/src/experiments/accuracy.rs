//! Headline accuracy experiments: Figures 6–9 (mean Q-error per dataset) and
//! Tables 3/4 (tail percentiles).

use crate::grid::{run_grid, CellResult};
use crate::report::{fmt, Report, Table};
use crate::setup::ExpScale;
use pace_ce::CeModelType;
use pace_core::AttackMethod;
use pace_data::DatasetKind;

/// Figures 6–9: mean test Q-error of every CE model before/after each attack,
/// one table per dataset.
pub fn fig6_9(scale: &ExpScale) {
    let methods = AttackMethod::headline();
    let cells = run_grid(
        scale,
        &DatasetKind::all(),
        &CeModelType::all(),
        &methods,
        0xf169,
    );
    let mut report = Report::new(format!("fig6_9_{}", scale.name));
    for kind in DatasetKind::all() {
        let mut t = Table::new(
            format!(
                "Figure {} — mean Q-error on {}",
                fig_number(kind),
                kind.name()
            ),
            &[
                "CE model", "Clean", "Random", "Lb-S", "Greedy", "Lb-G", "PACE",
            ],
        );
        for ty in CeModelType::all() {
            let mut row = vec![ty.name().to_string()];
            for &m in &methods {
                let cell = find(&cells, kind, ty, m);
                row.push(fmt(cell.outcome.poisoned.mean));
            }
            t.row(row);
        }
        report.table(&t);
    }
    report.note(summary_note(&cells));
    report.finish();
}

fn fig_number(kind: DatasetKind) -> u32 {
    match kind {
        DatasetKind::Dmv => 6,
        DatasetKind::Imdb => 7,
        DatasetKind::Tpch => 8,
        DatasetKind::Stats => 9,
    }
}

fn find(cells: &[CellResult], kind: DatasetKind, ty: CeModelType, m: AttackMethod) -> &CellResult {
    cells
        .iter()
        .find(|c| c.dataset == kind && c.model == ty && c.method == m)
        .expect("grid cell missing")
}

fn summary_note(cells: &[CellResult]) -> String {
    // Aggregate ordering check: PACE vs each baseline across all neural cells
    // (Linear is excluded: the paper also finds it barely attackable).
    let neural = |c: &&CellResult| c.model != CeModelType::Linear;
    let mean_for = |m: AttackMethod| -> f64 {
        let xs: Vec<f64> = cells
            .iter()
            .filter(neural)
            .filter(|c| c.method == m)
            .map(|c| c.outcome.qerror_multiple())
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    format!(
        "Mean Q-error multiple vs clean across neural models: PACE {} | Lb-G {} | Greedy {} | Lb-S {} | Random {}",
        fmt(mean_for(AttackMethod::Pace)),
        fmt(mean_for(AttackMethod::LbG)),
        fmt(mean_for(AttackMethod::Greedy)),
        fmt(mean_for(AttackMethod::LbS)),
        fmt(mean_for(AttackMethod::Random)),
    )
}

/// Table 3: 90th/95th/99th/max percentile Q-errors for FCN, FCN+Pool, MSCN
/// and RNN on all four datasets.
pub fn table3(scale: &ExpScale) {
    let models = [
        CeModelType::Fcn,
        CeModelType::FcnPool,
        CeModelType::Mscn,
        CeModelType::Rnn,
    ];
    let methods = AttackMethod::headline();
    let cells = run_grid(scale, &DatasetKind::all(), &models, &methods, 0x7ab3);
    let mut report = Report::new(format!("table3_{}", scale.name));
    for kind in DatasetKind::all() {
        let mut t = Table::new(
            format!("Table 3 ({}) — percentile Q-error", kind.name()),
            &["CE model", "Method", "90th", "95th", "99th", "Max"],
        );
        for ty in models {
            for &m in &methods {
                let c = find(&cells, kind, ty, m);
                let s = &c.outcome.poisoned;
                t.row(vec![
                    ty.name().into(),
                    m.name().into(),
                    fmt(s.p90),
                    fmt(s.p95),
                    fmt(s.p99),
                    fmt(s.max),
                ]);
            }
        }
        report.table(&t);
    }
    report.finish();
}

/// Table 4: LSTM and Linear tail Q-errors (95th/max) on DMV, IMDB and TPC-H.
pub fn table4(scale: &ExpScale) {
    let models = [CeModelType::Lstm, CeModelType::Linear];
    let datasets = [DatasetKind::Dmv, DatasetKind::Imdb, DatasetKind::Tpch];
    let methods = AttackMethod::headline();
    let cells = run_grid(scale, &datasets, &models, &methods, 0x7ab4);
    let mut report = Report::new(format!("table4_{}", scale.name));
    for kind in datasets {
        let mut t = Table::new(
            format!("Table 4 ({}) — percentile Q-error", kind.name()),
            &["CE model", "Method", "95th", "Max"],
        );
        for ty in models {
            for &m in &methods {
                let c = find(&cells, kind, ty, m);
                let s = &c.outcome.poisoned;
                t.row(vec![
                    ty.name().into(),
                    m.name().into(),
                    fmt(s.p95),
                    fmt(s.max),
                ]);
            }
        }
        report.table(&t);
    }
    report.finish();
}
