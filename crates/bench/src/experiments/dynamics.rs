//! Temporal-dynamics experiments: Figure 14 (attacking an incrementally
//! trained model) and Figure 15 (convergence of the optimization objective).

use crate::report::{fmt, Report, Table};
use crate::setup::{Ctx, ExpScale};
use pace_ce::{CeModel, CeModelType, EncodedWorkload};
use pace_core::{run_attack, AttackMethod};
use pace_data::DatasetKind;
use pace_runtime as pool;
use pace_workload::QueryEncoder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Incremental-training rounds (paper: the training workload is split into 5
/// parts).
pub const ROUNDS: usize = 5;

/// Figure 14: after each incremental-training round, attack the model and
/// record the Q-error multiple.
pub fn fig14(scale: &ExpScale) {
    let kinds = DatasetKind::all();
    let rows: Vec<(DatasetKind, Vec<f64>)> = pool::par_map(&kinds, |_, &kind| {
        let ctx = Ctx::new(kind, scale, 0xf14);
        let encoder = QueryEncoder::new(&ctx.ds);
        let data = EncodedWorkload::from_workload(&encoder, &ctx.train);
        let part = (data.len() / ROUNDS).max(1);
        let mut model = CeModel::new(CeModelType::Fcn, &ctx.ds, scale.ce, 0xf14 ^ kind as u64);
        let mut rng = StdRng::seed_from_u64(0xf14);
        let k = ctx.knowledge();
        let mut multiples = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            // Incremental training on the next chunk of the workload.
            let lo = round * part;
            let hi = ((round + 1) * part).min(data.len());
            let idx: Vec<usize> = (lo..hi).collect();
            let chunk = data.subset(&idx);
            if chunk.is_empty() {
                break;
            }
            model
                .train(&chunk, &mut rng)
                .expect("incremental training converges");
            // Attack a copy of the current model state.
            let snapshot = model.params().snapshot();
            let mut victim = ctx.victim(clone_model(&ctx, &model, scale));
            let mut cfg = scale.pipeline.clone();
            cfg.surrogate_type = Some(CeModelType::Fcn);
            cfg.attack.seed ^= round as u64;
            let outcome = run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
                .expect("attack campaign completes");
            multiples.push(outcome.qerror_multiple());
            model.params_mut().restore(&snapshot);
        }
        (kind, multiples)
    });

    let mut report = Report::new(format!("fig14_{}", scale.name));
    let mut t = Table::new(
        "Figure 14 — Q-error multiple after attacking each incremental-training round (FCN)",
        &[
            "Dataset", "Round 1", "Round 2", "Round 3", "Round 4", "Round 5",
        ],
    );
    for kind in DatasetKind::all() {
        let (_, multiples) = rows.iter().find(|(k, _)| *k == kind).expect("f14 row");
        let mut row = vec![kind.name().to_string()];
        for r in 0..ROUNDS {
            row.push(multiples.get(r).map_or("-".into(), |&m| fmt(m)));
        }
        t.row(row);
    }
    report.table(&t);
    let all: Vec<f64> = rows.iter().flat_map(|(_, m)| m.iter().copied()).collect();
    let avg = all.iter().sum::<f64>() / all.len().max(1) as f64;
    report.note(format!(
        "Average Q-error multiple per round: {avg:.1}× (paper: 22.4×)."
    ));
    report.finish();
}

/// A fresh model sharing the trained parameters (the victim takes ownership).
fn clone_model(ctx: &Ctx, model: &CeModel, scale: &ExpScale) -> CeModel {
    let mut copy = CeModel::new(model.model_type(), &ctx.ds, scale.ce, 0xc10e);
    copy.params_mut().restore(&model.params().snapshot());
    copy
}

/// Figure 15: the objective value of Eq. 10 per generator iteration, FCN on
/// all four datasets.
pub fn fig15(scale: &ExpScale) {
    let kinds = DatasetKind::all();
    let rows: Vec<(DatasetKind, Vec<f32>)> = pool::par_map(&kinds, |_, &kind| {
        let ctx = Ctx::new(kind, scale, 0xf15);
        let model = ctx.train_victim_model(CeModelType::Fcn, scale.ce, 0xf15);
        let mut victim = ctx.victim(model);
        let k = ctx.knowledge();
        let mut cfg = scale.pipeline.clone();
        cfg.surrogate_type = Some(CeModelType::Fcn);
        let outcome = run_attack(&mut victim, AttackMethod::Pace, &ctx.test, &k, &cfg)
            .expect("attack campaign completes");
        (kind, outcome.objective_curve)
    });

    let mut report = Report::new(format!("fig15_{}", scale.name));
    let mut t = Table::new(
        "Figure 15 — objective value (mean test Q-error of the poisoned surrogate) per iteration",
        &["Iteration", "dmv", "imdb", "tpch", "stats"],
    );
    let max_len = rows.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for i in 0..max_len {
        let mut row = vec![format!("{}", i + 1)];
        for kind in DatasetKind::all() {
            let curve = &rows.iter().find(|(k, _)| *k == kind).expect("f15 row").1;
            row.push(curve.get(i).map_or("-".into(), |&v| fmt(f64::from(v))));
        }
        t.row(row);
    }
    report.table(&t);
    // Convergence check: the tail should not be below the head.
    let mut converging = 0;
    for (_, curve) in &rows {
        if curve.len() >= 4 {
            let head: f32 = curve[..2].iter().sum::<f32>() / 2.0;
            let tail: f32 = curve[curve.len() - 2..].iter().sum::<f32>() / 2.0;
            if tail >= head {
                converging += 1;
            }
        }
    }
    report.note(format!(
        "{converging}/{} curves end at or above their starting objective (rising = the \
         negative loss of Eq. 10 is falling, i.e. converging as in the paper).",
        rows.len()
    ));
    report.finish();
}
