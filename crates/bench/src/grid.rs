//! The (dataset × model × method) attack grid behind the headline accuracy
//! results (Figures 6–9, Tables 3/4) — run cell-parallel across threads.

use crate::setup::{Ctx, ExpScale};
use pace_ce::CeModelType;
use pace_core::{run_attack, AttackMethod, AttackOutcome};
use pace_data::DatasetKind;
use pace_runtime as pool;

/// One grid cell's measurements.
pub struct CellResult {
    /// Dataset of the cell.
    pub dataset: DatasetKind,
    /// Victim model type.
    pub model: CeModelType,
    /// Attack method.
    pub method: AttackMethod,
    /// Full attack outcome (clean/poisoned summaries, divergence, times).
    pub outcome: AttackOutcome,
}

/// Runs every (dataset, model) victim cell-parallel over the deterministic
/// pool; within a cell the methods run sequentially against
/// parameter-restored copies of the same trained victim, so methods are
/// compared on identical models.
///
/// The surrogate type is pinned to the victim's true type here; speculation
/// accuracy and the cost of mis-speculation are measured separately
/// (Tables 6/7), mirroring how the paper factors its analysis.
pub fn run_grid(
    scale: &ExpScale,
    datasets: &[DatasetKind],
    models: &[CeModelType],
    methods: &[AttackMethod],
    seed: u64,
) -> Vec<CellResult> {
    let cells: Vec<(DatasetKind, CeModelType)> = datasets
        .iter()
        .flat_map(|&kind| models.iter().map(move |&ty| (kind, ty)))
        .collect();
    let mut out: Vec<CellResult> = pool::par_map(&cells, |_, &(kind, ty)| {
        run_cell(scale, kind, ty, methods, seed)
    })
    .into_iter()
    .flatten()
    .collect();
    // Deterministic report order.
    out.sort_by_key(|c| {
        (
            c.dataset.name(),
            c.model.name(),
            methods
                .iter()
                .position(|&m| m == c.method)
                .unwrap_or(usize::MAX),
        )
    });
    out
}

/// Runs all methods against one freshly trained victim.
pub fn run_cell(
    scale: &ExpScale,
    kind: DatasetKind,
    ty: CeModelType,
    methods: &[AttackMethod],
    seed: u64,
) -> Vec<CellResult> {
    let ctx = Ctx::new(kind, scale, seed);
    let model = ctx.train_victim_model(ty, scale.ce, seed ^ (ty as u64 + 1));
    let snapshot = model.params().snapshot();
    let mut victim = ctx.victim(model);
    let k = ctx.knowledge();
    let mut cfg = scale.pipeline.clone();
    cfg.surrogate_type = Some(ty);
    methods
        .iter()
        .map(|&method| {
            victim.model_mut().params_mut().restore(&snapshot);
            let outcome = run_attack(&mut victim, method, &ctx.test, &k, &cfg)
                .expect("attack campaign completes");
            CellResult {
                dataset: kind,
                model: ty,
                method,
                outcome,
            }
        })
        .collect()
}
