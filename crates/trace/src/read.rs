//! A minimal reader for the flat JSONL trace format this crate emits.
//!
//! Every line `pace-trace` writes is one flat JSON object whose values are
//! strings or non-negative numbers — no nesting, no arrays, no booleans.
//! [`parse_line`] covers exactly that subset (plus negative and fractional
//! numbers for forward compatibility) so `xtask trace-report` and tests can
//! read traces without a JSON dependency.

use std::collections::BTreeMap;

/// A parsed field value: the trace format only carries strings and numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string (escapes resolved).
    Str(String),
    /// A JSON number.
    Num(f64),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            self.pos += 4;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<f64> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }
}

/// Parses one flat-JSON trace line into a field map. Returns `None` on any
/// malformed input (including nested objects/arrays, which the trace never
/// emits); callers typically `filter_map` over lines so foreign text is
/// skipped silently.
pub fn parse_line(line: &str) -> Option<BTreeMap<String, Value>> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    c.skip_ws();
    if !c.eat(b'{') {
        return None;
    }
    let mut map = BTreeMap::new();
    c.skip_ws();
    if c.eat(b'}') {
        return Some(map);
    }
    loop {
        c.skip_ws();
        let key = c.parse_string()?;
        c.skip_ws();
        if !c.eat(b':') {
            return None;
        }
        c.skip_ws();
        let value = match c.peek()? {
            b'"' => Value::Str(c.parse_string()?),
            b'-' | b'0'..=b'9' => Value::Num(c.parse_number()?),
            _ => return None,
        };
        map.insert(key, value);
        c.skip_ws();
        if c.eat(b',') {
            continue;
        }
        if c.eat(b'}') {
            c.skip_ws();
            if c.peek().is_some() {
                return None;
            }
            return Some(map);
        }
        return None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_span_line() {
        let m = parse_line(
            r#"{"ev":"span","name":"campaign::wave","idx":3,"tid":0,"depth":1,"start_ns":12345,"dur_ns":678,"seq":9}"#,
        )
        .expect("valid line");
        assert_eq!(m.get("ev").and_then(Value::as_str), Some("span"));
        assert_eq!(m.get("idx").and_then(Value::as_u64), Some(3));
        assert_eq!(m.get("dur_ns").and_then(Value::as_u64), Some(678));
    }

    #[test]
    fn resolves_escapes() {
        let m = parse_line(r#"{"k":"a\"b\\c\ndA"}"#).expect("valid line");
        assert_eq!(m.get("k").and_then(Value::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_line("").is_none());
        assert!(parse_line("not json").is_none());
        assert!(parse_line(r#"{"k":}"#).is_none());
        assert!(parse_line(r#"{"k":[1]}"#).is_none());
        assert!(parse_line(r#"{"k":1} trailing"#).is_none());
        assert!(parse_line(r#"{"k":1"#).is_none());
    }

    #[test]
    fn empty_object_ok() {
        assert_eq!(parse_line("{}").map(|m| m.len()), Some(0));
    }

    #[test]
    fn numbers() {
        let m = parse_line(r#"{"a":-2.5,"b":18446744073709551615}"#).expect("valid line");
        assert_eq!(m.get("a").and_then(Value::as_f64), Some(-2.5));
        assert_eq!(m.get("a").and_then(Value::as_u64), None);
        assert!(m.get("b").and_then(Value::as_f64).is_some());
    }
}
