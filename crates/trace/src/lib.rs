//! `pace-trace` — zero-dependency, deterministic-overhead structured tracing
//! (re-exported as `pace_tensor::trace`).
//!
//! The campaign runtime spends its budget in a handful of hot loops — CE
//! training steps, hypergradient unrolls, oracle probes, exact-count waves —
//! and this crate records *where* that budget goes without ever perturbing
//! what the loops compute. It provides three primitives:
//!
//! * **Scoped spans** ([`span`] / [`span_at`]): RAII guards that record a
//!   monotonic wall-time interval with thread attribution and nesting depth,
//!   emitted as one JSONL line per span when the guard drops.
//! * **Lock-free counters and histograms** ([`Counter`], [`Histogram`]):
//!   process-global atomics for hot-path tallies (matmul FLOPs, tape-replay
//!   node visits, pool chunk utilization, oracle probes/retries/breaker
//!   trips, checkpoint rollbacks). Snapshots are appended to the trace by
//!   [`flush`].
//! * **Per-op profile events** ([`emit_op_profile`]): join points between
//!   the tape's static FLOP/byte cost model and measured replay time,
//!   emitted by `pace_tensor::opt`'s profiled replay.
//!
//! # The `PACE_TRACE` flag
//!
//! The crate joins the `PACE_AUDIT`/`PACE_OPT`/`PACE_FAULTS` env-flag
//! family (`pace_tensor::flags`): unset, empty, or `0` means off; `1`,
//! `true`, or `on` enables tracing to [`DEFAULT_TRACE_PATH`] in the current
//! directory; any other value is a file path to write to. The variable is
//! read once, on first use; tests and embedders override it at any time
//! with [`install`].
//!
//! # The determinism and overhead contract
//!
//! Tracing must never change results: every hook only *reads* program state
//! and timestamps, so a traced run is bit-identical to an untraced run (a
//! property the tensor crate's proptests pin down). When the layer is
//! disarmed, every hook answers with **a single relaxed atomic load** — the
//! same pattern as `pace_tensor::fault` — so benches and production runs
//! pay nothing measurable. The first hook call resolves the env var through
//! a mutex; after that the armed/disarmed decision never takes a lock.
//!
//! # JSONL schema
//!
//! One flat JSON object per line. `ev` discriminates:
//!
//! ```text
//! {"ev":"meta","version":1}
//! {"ev":"span","name":"campaign::wave","idx":3,"tid":0,"depth":1,"start_ns":12345,"dur_ns":678,"seq":9}
//! {"ev":"counter","name":"oracle_probes","value":181}
//! {"ev":"hist","name":"pool_chunks_per_worker","bucket_lo":8,"count":4}
//! {"ev":"op","ctx":"attack::hypergradient","op":"MatMul","count":96,"flops":1228800,"out_bytes":49152,"measured_ns":40210}
//! ```
//!
//! `start_ns`/`dur_ns` are nanoseconds on one process-global monotonic
//! clock; `tid` is a small per-process thread ordinal; `depth` is the
//! span-nesting depth *on that thread* at entry. Spans are written when
//! they close, so children precede parents in the file — readers
//! ([`read::parse_line`], `xtask trace-report`) sort by start time.

#![warn(missing_docs)]

use std::cell::Cell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod read;

/// Where `PACE_TRACE=1` writes: this file in the current directory.
pub const DEFAULT_TRACE_PATH: &str = "pace_trace.jsonl";

// ---- armed/disarmed fast path ----------------------------------------------

// Same three-state pattern as `pace_tensor::fault`: the flag starts UNKNOWN
// (env var unread); the first hook call resolves it through the sink mutex,
// and from then on a disarmed process answers with one relaxed atomic load.
const ARMED_UNKNOWN: u8 = 0;
const ARMED_OFF: u8 = 1;
const ARMED_ON: u8 = 2;
static ARMED: AtomicU8 = AtomicU8::new(ARMED_UNKNOWN);

#[inline]
fn disarmed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        ARMED_OFF => true,
        ARMED_ON => false,
        _ => !with_sink(|s| s.out.is_some()),
    }
}

/// True when tracing is armed for this process (resolving `PACE_TRACE` on
/// first call).
pub fn enabled() -> bool {
    !disarmed()
}

// ---- the sink ---------------------------------------------------------------

struct SinkState {
    loaded: bool,
    out: Option<std::io::BufWriter<std::fs::File>>,
    seq: u64,
}

static SINK: Mutex<SinkState> = Mutex::new(SinkState {
    loaded: false,
    out: None,
    seq: 0,
});

/// The process-global monotonic epoch every `start_ns` is relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn open_sink(path: &Path) -> Option<std::io::BufWriter<std::fs::File>> {
    match std::fs::File::create(path) {
        Ok(f) => Some(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!(
                "pace-trace: cannot open {}: {e} — tracing off",
                path.display()
            );
            None
        }
    }
}

/// Resolves the `PACE_TRACE` value to a sink path, mirroring the
/// `EnvFlag`/`EnvSpec` grammar: unset/empty/`0` off; `1`/`true`/`on` the
/// default path; anything else a literal path.
fn resolve_env() -> Option<PathBuf> {
    let raw = std::env::var("PACE_TRACE").ok()?;
    let t = raw.trim();
    if t.is_empty() || t == "0" {
        return None;
    }
    if matches!(t.to_ascii_lowercase().as_str(), "1" | "true" | "on") {
        return Some(PathBuf::from(DEFAULT_TRACE_PATH));
    }
    Some(PathBuf::from(t))
}

fn with_sink<T>(f: impl FnOnce(&mut SinkState) -> T) -> T {
    let mut s = match SINK.lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !s.loaded {
        s.loaded = true;
        s.out = resolve_env().and_then(|p| {
            let out = open_sink(&p);
            if out.is_some() {
                epoch(); // pin the clock epoch at arm time
            }
            out
        });
        if s.out.is_some() {
            write_line(&mut s, &[("ev", Val::S("meta")), ("version", Val::U(1))]);
        }
    }
    let armed = if s.out.is_some() { ARMED_ON } else { ARMED_OFF };
    ARMED.store(armed, Ordering::Relaxed);
    f(&mut s)
}

/// Installs (or, with `None`, disarms) the trace sink for this process,
/// overriding whatever `PACE_TRACE` said. The previous sink, if any, is
/// flushed and closed. Metric counters are *not* reset — see
/// [`reset_metrics`].
pub fn install(path: Option<PathBuf>) {
    let mut s = match SINK.lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(out) = s.out.as_mut() {
        let _ = out.flush();
    }
    s.loaded = true;
    s.out = path.and_then(|p| {
        let out = open_sink(&p);
        if out.is_some() {
            epoch();
        }
        out
    });
    s.seq = 0;
    let armed = if s.out.is_some() { ARMED_ON } else { ARMED_OFF };
    ARMED.store(armed, Ordering::Relaxed);
    if s.out.is_some() {
        write_line(&mut s, &[("ev", Val::S("meta")), ("version", Val::U(1))]);
    }
}

/// Appends a snapshot of every counter and histogram to the trace and
/// flushes the sink to disk. Call once at the end of a traced region:
/// span/op lines land as they happen (the sink is line-buffered), but
/// counter and histogram totals only appear through this snapshot.
pub fn flush() {
    if disarmed() {
        return;
    }
    with_sink(|s| {
        if s.out.is_none() {
            return;
        }
        for c in COUNTERS {
            let v = c.value.load(Ordering::Relaxed);
            write_line(
                s,
                &[
                    ("ev", Val::S("counter")),
                    ("name", Val::S(c.name)),
                    ("value", Val::U(v)),
                ],
            );
        }
        for h in HISTOGRAMS {
            for (lo, count) in h.nonzero_buckets() {
                write_line(
                    s,
                    &[
                        ("ev", Val::S("hist")),
                        ("name", Val::S(h.name)),
                        ("bucket_lo", Val::U(lo)),
                        ("count", Val::U(count)),
                    ],
                );
            }
        }
        if let Some(out) = s.out.as_mut() {
            let _ = out.flush();
        }
    });
}

// ---- JSON writing -----------------------------------------------------------

/// A JSON-serializable field value for trace lines.
enum Val<'a> {
    S(&'a str),
    U(u64),
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_line(s: &mut SinkState, fields: &[(&str, Val<'_>)]) {
    let Some(out) = s.out.as_mut() else {
        return;
    };
    let mut line = String::with_capacity(96);
    line.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_str(&mut line, k);
        line.push(':');
        match v {
            Val::S(x) => push_json_str(&mut line, x),
            Val::U(x) => {
                let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{x}"));
            }
        }
    }
    line.push(',');
    push_json_str(&mut line, "seq");
    let _ = std::fmt::Write::write_fmt(&mut line, format_args!(":{}", s.seq));
    s.seq += 1;
    line.push('}');
    line.push('\n');
    let _ = out.write_all(line.as_bytes());
    // Line-buffered: statics never drop, so an unflushed tail would vanish
    // at process exit — and a trace that survives an injected crash
    // (`PACE_FAULTS=crash,...`) is exactly the trace worth reading. The
    // extra write syscall is armed-only cost.
    let _ = out.flush();
}

/// Emits one per-op profile line joining the static cost model against
/// measured replay time (see `pace_tensor::opt`'s profiled replay). No-op
/// when disarmed.
pub fn emit_op_profile(
    ctx: &str,
    op: &'static str,
    count: u64,
    flops: u64,
    out_bytes: u64,
    measured_ns: u64,
) {
    if disarmed() {
        return;
    }
    with_sink(|s| {
        write_line(
            s,
            &[
                ("ev", Val::S("op")),
                ("ctx", Val::S(ctx)),
                ("op", Val::S(op)),
                ("count", Val::U(count)),
                ("flops", Val::U(flops)),
                ("out_bytes", Val::U(out_bytes)),
                ("measured_ns", Val::U(measured_ns)),
            ],
        );
    });
}

// ---- spans ------------------------------------------------------------------

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small per-process thread ordinal, assigned on first traced event.
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Current span-nesting depth on this thread.
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

fn tid() -> u64 {
    TID.with(|c| {
        if c.get() == u64::MAX {
            c.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// An open span: created by [`span`] / [`span_at`], emitted as one JSONL
/// line when dropped. Inert (zero work beyond one relaxed load) when the
/// layer is disarmed.
pub struct Span {
    name: &'static str,
    idx: Option<u64>,
    tid: u64,
    depth: u64,
    start_ns: u64,
    active: bool,
}

/// Opens a named span covering the enclosing scope.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_impl(name, None)
}

/// Opens a named span tagged with an iteration/wave index.
#[inline]
pub fn span_at(name: &'static str, idx: u64) -> Span {
    span_impl(name, Some(idx))
}

fn span_impl(name: &'static str, idx: Option<u64>) -> Span {
    if disarmed() {
        return Span {
            name,
            idx,
            tid: 0,
            depth: 0,
            start_ns: 0,
            active: false,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span {
        name,
        idx,
        tid: tid(),
        depth,
        start_ns: now_ns(),
        active: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur = now_ns().saturating_sub(self.start_ns);
        with_sink(|s| {
            let mut fields = vec![("ev", Val::S("span")), ("name", Val::S(self.name))];
            if let Some(idx) = self.idx {
                fields.push(("idx", Val::U(idx)));
            }
            fields.push(("tid", Val::U(self.tid)));
            fields.push(("depth", Val::U(self.depth)));
            fields.push(("start_ns", Val::U(self.start_ns)));
            fields.push(("dur_ns", Val::U(dur)));
            write_line(s, &fields);
        });
    }
}

// ---- counters ---------------------------------------------------------------

/// A process-global, lock-free event counter. [`Counter::add`] is a single
/// relaxed atomic load when the layer is disarmed and a single relaxed
/// `fetch_add` when armed — cheap enough for the matmul kernel.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Declares a counter. All counters live in the module-level registry
    /// below so [`flush`] and reports can enumerate them.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events. No-op (one relaxed load) when disarmed.
    #[inline]
    pub fn add(&self, n: u64) {
        if disarmed() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index a value lands in: bucket 0 holds exactly `0`, bucket
/// `i >= 1` holds `[2^(i-1), 2^i)`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The inclusive lower bound of bucket `i` (see [`bucket_of`]).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A process-global, lock-free power-of-two histogram. Same overhead
/// contract as [`Counter`].
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// Declares a histogram (registered in the module-level registry).
    pub const fn new(name: &'static str) -> Self {
        // An inline-const repeat operand: each array slot gets a fresh
        // AtomicU64, which is exactly the semantics a shared `static` would
        // get wrong.
        Self {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation of `v`. No-op (one relaxed load) when
    /// disarmed.
    #[inline]
    pub fn record(&self, v: u64) {
        if disarmed() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// `(bucket lower bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_lo(i), n))
            })
            .collect()
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

// ---- the metric registry ----------------------------------------------------

/// FLOPs executed by the matmul kernel (2·n·k·m per product).
pub static MATMUL_FLOPS: Counter = Counter::new("matmul_flops");
/// Plan steps executed by tape-replay (`pace_tensor::opt`).
pub static REPLAY_NODE_VISITS: Counter = Counter::new("replay_node_visits");
/// Tasks executed by the deterministic pool (`pace_runtime`).
pub static POOL_TASKS: Counter = Counter::new("pool_tasks");
/// Probes issued through `ResilientOracle`.
pub static ORACLE_PROBES: Counter = Counter::new("oracle_probes");
/// Oracle retry attempts after a probe failure.
pub static ORACLE_RETRIES: Counter = Counter::new("oracle_retries");
/// Probes answered from the degradation path (breaker open / just tripped).
pub static ORACLE_DEGRADED: Counter = Counter::new("oracle_degraded");
/// Circuit-breaker trips in `ResilientOracle`.
pub static BREAKER_TRIPS: Counter = Counter::new("breaker_trips");
/// Checkpoint rollbacks across CE training, surrogate imitation, and the
/// attack loops.
pub static CHECKPOINT_ROLLBACKS: Counter = Counter::new("checkpoint_rollbacks");

/// Requests admitted to (or rejected by) the `pace-serve` runtime.
pub static SERVE_REQUESTS: Counter = Counter::new("serve_requests");
/// Requests rejected with a typed `Shed` error (queue at cap, fallback
/// budget exhausted).
pub static SERVE_SHED: Counter = Counter::new("serve_shed");
/// Requests served by the classical fallback estimator (degraded path).
pub static SERVE_FALLBACK: Counter = Counter::new("serve_fallback");
/// Requests that missed their deadline (at admission or batch formation).
pub static SERVE_DEADLINE_MISSES: Counter = Counter::new("serve_deadline_misses");
/// Tensor batches executed by the serving runtime.
pub static SERVE_BATCHES: Counter = Counter::new("serve_batches");
/// Model snapshots atomically swapped in after shadow validation.
pub static SERVE_SWAPS: Counter = Counter::new("serve_swaps");
/// Candidate snapshots rejected by shadow validation and rolled back.
pub static SERVE_SWAPS_REJECTED: Counter = Counter::new("serve_swaps_rejected");
/// Non-finite learned estimates replaced by the fallback estimator before
/// being served (the zero-non-finite-replies invariant at work).
pub static SERVE_NONFINITE_REPLACED: Counter = Counter::new("serve_nonfinite_replaced");
/// Break-glass snapshot installs that bypassed shadow validation
/// (`SnapshotStore::force_install`). Kept apart from [`SERVE_SWAPS`] so an
/// operator override is never mistaken for a validated swap in traces.
pub static SERVE_FORCE_INSTALLS: Counter = Counter::new("serve_force_installs");
/// Campaign poison waves whose candidate snapshot passed shadow validation
/// and was swapped into the serving path.
pub static SERVE_POISON_WAVES_ACCEPTED: Counter = Counter::new("serve_poison_waves_accepted");
/// Campaign poison waves whose candidate snapshot was rejected (pinned
/// q-error probe, non-finite parameters, version ban, or open breaker) and
/// rolled back — the serving layer's defense actually firing.
pub static SERVE_POISON_WAVES_REJECTED: Counter = Counter::new("serve_poison_waves_rejected");

/// Tasks pulled per pool worker within one parallel region — the chunk
/// utilization distribution across `PACE_THREADS` workers. Inline regions
/// (sequential pool, nested region on a worker, trivial fan-out) are *not*
/// sampled here — they land in [`POOL_INLINE_TASKS`] — so this histogram is
/// comparable across thread counts.
pub static POOL_CHUNKS_PER_WORKER: Histogram = Histogram::new("pool_chunks_per_worker");
/// Region sizes executed inline (no worker fan-out): one sample of `tasks`
/// per inline region. Kept apart from [`POOL_CHUNKS_PER_WORKER`] so the
/// per-worker distribution is not skewed by whole-region samples.
pub static POOL_INLINE_TASKS: Histogram = Histogram::new("pool_inline_tasks");
/// Oracle backoff waits, in virtual microseconds.
pub static BACKOFF_VIRTUAL_US: Histogram = Histogram::new("backoff_virtual_us");

/// End-to-end request latency through the serving runtime, in virtual
/// microseconds (admission to reply).
pub static SERVE_LATENCY_US: Histogram = Histogram::new("serve_latency_us");
/// Admission-queue depth sampled at every enqueue.
pub static SERVE_QUEUE_DEPTH: Histogram = Histogram::new("serve_queue_depth");
/// Sizes of the tensor batches the serving runtime executed.
pub static SERVE_BATCH_SIZE: Histogram = Histogram::new("serve_batch_size");

/// Every registered counter, in emission order.
pub static COUNTERS: [&Counter; 19] = [
    &MATMUL_FLOPS,
    &REPLAY_NODE_VISITS,
    &POOL_TASKS,
    &ORACLE_PROBES,
    &ORACLE_RETRIES,
    &ORACLE_DEGRADED,
    &BREAKER_TRIPS,
    &CHECKPOINT_ROLLBACKS,
    &SERVE_REQUESTS,
    &SERVE_SHED,
    &SERVE_FALLBACK,
    &SERVE_DEADLINE_MISSES,
    &SERVE_BATCHES,
    &SERVE_SWAPS,
    &SERVE_SWAPS_REJECTED,
    &SERVE_NONFINITE_REPLACED,
    &SERVE_FORCE_INSTALLS,
    &SERVE_POISON_WAVES_ACCEPTED,
    &SERVE_POISON_WAVES_REJECTED,
];

/// Every registered histogram, in emission order.
pub static HISTOGRAMS: [&Histogram; 6] = [
    &POOL_CHUNKS_PER_WORKER,
    &POOL_INLINE_TASKS,
    &BACKOFF_VIRTUAL_US,
    &SERVE_LATENCY_US,
    &SERVE_QUEUE_DEPTH,
    &SERVE_BATCH_SIZE,
];

/// `(name, value)` snapshot of every registered counter.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    COUNTERS.iter().map(|c| (c.name(), c.get())).collect()
}

/// Zeroes every registered counter and histogram. Counters are process
/// globals; a report over one traced region should reset before it starts.
pub fn reset_metrics() {
    for c in COUNTERS {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in HISTOGRAMS {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The sink and the ARMED flag are process-global; tests that arm or
    /// disarm tracing must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn temp_trace(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pace-trace-test-{}-{name}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn bucketing_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's lower bound lands in its own bucket.
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn disarmed_counters_do_not_count() {
        let _g = lock();
        install(None);
        reset_metrics();
        MATMUL_FLOPS.add(1000);
        POOL_CHUNKS_PER_WORKER.record(5);
        assert_eq!(MATMUL_FLOPS.get(), 0, "disarmed add must be a no-op");
        assert_eq!(POOL_CHUNKS_PER_WORKER.total(), 0);
    }

    #[test]
    fn spans_nest_and_attribute_threads() {
        let _g = lock();
        let path = temp_trace("nesting");
        install(Some(path.clone()));
        reset_metrics();
        {
            let _outer = span("outer");
            {
                let _inner = span_at("inner", 7);
            }
        }
        ORACLE_PROBES.add(3);
        flush();
        install(None);
        let text = std::fs::read_to_string(&path).expect("trace file exists");
        let _ = std::fs::remove_file(&path);
        let events: Vec<_> = text.lines().filter_map(read::parse_line).collect();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ev").and_then(read::Value::as_str) == Some("span"))
            .collect();
        assert_eq!(spans.len(), 2);
        // Written at close: inner first. Same thread, inner one level deeper,
        // inner interval contained in outer's.
        let inner = spans[0];
        let outer = spans[1];
        assert_eq!(
            inner.get("name").and_then(read::Value::as_str),
            Some("inner")
        );
        assert_eq!(inner.get("idx").and_then(read::Value::as_u64), Some(7));
        assert_eq!(
            outer.get("name").and_then(read::Value::as_str),
            Some("outer")
        );
        let u = |e: &std::collections::BTreeMap<String, read::Value>, k: &str| {
            e.get(k).and_then(read::Value::as_u64).expect("u64 field")
        };
        assert_eq!(u(inner, "tid"), u(outer, "tid"));
        assert_eq!(u(inner, "depth"), u(outer, "depth") + 1);
        assert!(u(inner, "start_ns") >= u(outer, "start_ns"));
        assert!(
            u(inner, "start_ns") + u(inner, "dur_ns") <= u(outer, "start_ns") + u(outer, "dur_ns")
        );
        // The counter snapshot made it into the flush.
        let got = events.iter().any(|e| {
            e.get("ev").and_then(read::Value::as_str) == Some("counter")
                && e.get("name").and_then(read::Value::as_str) == Some("oracle_probes")
                && e.get("value").and_then(read::Value::as_u64) == Some(3)
        });
        assert!(got, "flush must snapshot counters");
    }

    #[test]
    fn json_lines_round_trip_through_the_parser() {
        let _g = lock();
        let path = temp_trace("roundtrip");
        install(Some(path.clone()));
        emit_op_profile("ctx \"quoted\"\n", "MatMul", 4, 1024, 512, 99);
        flush();
        install(None);
        let text = std::fs::read_to_string(&path).expect("trace file exists");
        let _ = std::fs::remove_file(&path);
        let op = text
            .lines()
            .filter_map(read::parse_line)
            .find(|e| e.get("ev").and_then(read::Value::as_str) == Some("op"))
            .expect("op event present");
        assert_eq!(
            op.get("ctx").and_then(read::Value::as_str),
            Some("ctx \"quoted\"\n")
        );
        assert_eq!(op.get("flops").and_then(read::Value::as_u64), Some(1024));
        assert_eq!(
            op.get("measured_ns").and_then(read::Value::as_u64),
            Some(99)
        );
    }

    #[test]
    fn install_none_disarms() {
        let _g = lock();
        install(None);
        assert!(!enabled());
        let path = temp_trace("arm");
        install(Some(path.clone()));
        assert!(enabled());
        install(None);
        assert!(!enabled());
        let _ = std::fs::remove_file(&path);
    }
}
