//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal, API-compatible subset of `proptest 1`: the [`proptest!`]
//! macro, [`prelude::Strategy`] with `prop_map`/`prop_flat_map`, numeric
//! range strategies, tuple strategies, [`prelude::any`], `prop::collection::vec`,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! case index; rerunning is deterministic because the per-test seed is a hash
//! of the test's module path and name), and no persistence of failure seeds.

/// Runtime internals used by the generated test bodies. Not a public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test's full name: a stable per-test seed.
    pub fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Strategies, config, and macro re-exports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }

    /// Test-runner configuration (only the case count is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy yielding a constant (cloned) value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical full-domain strategy (mirrors `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// Full-domain strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) { body } }`.
///
/// Accepts an optional leading `#![proptest_config(expr)]`. Each generated
/// test runs `config.cases` random cases with a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::prelude::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::fnv(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let __run = || {
                    $(let $arg = $crate::prelude::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                };
                // The case index in the panic payload substitutes for
                // upstream's shrinking: the stream is deterministic, so the
                // index pinpoints the failing input.
                run_case(__case, __run);
            }

            fn run_case(case: u32, run: impl FnOnce()) {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!("proptest stub: property failed at case {case}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, rc in (1usize..4, 1usize..4)) {
            let (r, c) = rc;
            prop_assert!((0..10).contains(&x));
            prop_assert!(r < 4 && c < 4 && r >= 1 && c >= 1);
        }

        #[test]
        fn flat_map_vec(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0f32..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn map_and_any(s in (0u8..5).prop_map(|n| n * 2), raw in any::<u64>()) {
            prop_assert!(s % 2 == 0 && s < 10);
            let _ = raw;
        }
    }
}
