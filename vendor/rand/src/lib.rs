//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal, API-compatible subset of `rand 0.9`: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation workloads, *not* cryptographically secure (the real `StdRng`
//! is ChaCha-based; nothing in this workspace relies on that property).
//!
//! Streams differ from upstream `rand`, so seeded runs reproduce against
//! this stub, not against crates.io builds.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state. Together with
        /// [`StdRng::from_state`] this allows checkpoint/resume machinery to
        /// snapshot a generator mid-stream and later continue the *exact*
        /// random sequence (upstream `rand` offers this through serde; the
        /// offline stub exposes the four xoshiro256++ words directly).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from a state captured by
        /// [`StdRng::state`]. The resulting stream is bit-identical to the
        /// original generator's continuation.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges a value of type `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply range reduction (Lemire). The modulo bias is at most
    // span/2^64 — negligible for the simulation use here.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width range
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty, $unit:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = $unit(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_float_range!(f64, unit_f64; f32, unit_f32);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: f32 = rng.random_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&y));
            let z: usize = rng.random_range(3..=3);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
