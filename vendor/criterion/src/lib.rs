//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal, API-compatible subset of `criterion 0.8`: enough for
//! `cargo bench` to run the workspace's benchmarks and print per-benchmark
//! mean wall-clock times. No statistical analysis, warm-up control, plots,
//! or HTML reports.

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup output; upstream batches many per allocation.
    SmallInput,
    /// Large setup output; upstream batches fewer.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iterations` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the measurement iteration count (upstream: sample count).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iterations as f64;
        println!(
            "{id:<40} {:>12.3} us/iter ({} iters)",
            mean * 1e6,
            b.iterations
        );
        self
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: `criterion_group! { name = n; config = c; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
