//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal, API-compatible subset of `criterion 0.8`: enough for
//! `cargo bench` to run the workspace's benchmarks and print per-benchmark
//! mean wall-clock times. No statistical analysis, warm-up control, plots,
//! or HTML reports.
//!
//! One extension over upstream: when the `CRITERION_JSON` environment
//! variable names a file, every completed benchmark rewrites it with a JSON
//! array of `{"id", "mean_us", "iters"}` objects accumulated so far — CI
//! uses this to publish benchmark numbers as build artifacts.

use std::sync::Mutex;
use std::time::{Duration, Instant};

static JSON_RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// Records one result and, when `CRITERION_JSON` is set, rewrites the whole
/// accumulated array so the file is valid JSON after every benchmark.
fn record_json(id: &str, mean_us: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let mut results = JSON_RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    results.push((id.to_string(), mean_us, iters));
    let mut out = String::from("[\n");
    for (i, (id, mean, iters)) in results.iter().enumerate() {
        let escaped: String = id
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "  {{\"id\": \"{escaped}\", \"mean_us\": {mean:.3}, \"iters\": {iters}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let _ = std::fs::write(&path, out);
}

/// How per-iteration inputs are batched (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup output; upstream batches many per allocation.
    SmallInput,
    /// Large setup output; upstream batches fewer.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iterations` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the measurement iteration count (upstream: sample count).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iterations as f64;
        println!(
            "{id:<40} {:>12.3} us/iter ({} iters)",
            mean * 1e6,
            b.iterations
        );
        record_json(id, mean * 1e6, b.iterations);
        self
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: `criterion_group! { name = n; config = c; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
