//! Cross-crate property-based tests (proptest): the exact-count engine versus
//! a brute-force reference, encoder round-trips, generator validity, and
//! optimizer invariants over randomized inputs.

use pace_data::schema::{table, JoinEdge};
use pace_data::{Dataset, Schema, Table};
use pace_engine::{naive_count, optimize, CardEstimator, Executor};
use pace_workload::{Predicate, Query, QueryEncoder};
use proptest::prelude::*;

/// A small random chain database `a — b — c` with data driven by proptest.
fn chain_db(a_vals: Vec<i64>, b_fk: Vec<u8>, b_vals: Vec<i64>, c_fk: Vec<u8>) -> Dataset {
    let schema = Schema::new(
        "prop",
        vec![
            table("a", &["id"], &[], &["x"]),
            table("b", &["id"], &["a_id"], &["y"]),
            table("c", &["id"], &["b_id"], &[]),
        ],
        vec![
            JoinEdge {
                left: (0, 0),
                right: (1, 1),
            },
            JoinEdge {
                left: (1, 0),
                right: (2, 1),
            },
        ],
    );
    let na = a_vals.len().max(1) as i64;
    let nb = b_fk.len().max(1) as i64;
    let a = Table::from_columns(vec![(0..a_vals.len() as i64).collect(), a_vals]);
    let b = Table::from_columns(vec![
        (0..b_fk.len() as i64).collect(),
        b_fk.iter().map(|&v| i64::from(v) % na).collect(),
        b_vals,
    ]);
    let c = Table::from_columns(vec![
        (0..c_fk.len() as i64).collect(),
        c_fk.iter().map(|&v| i64::from(v) % nb).collect(),
    ]);
    Dataset::new(schema, vec![a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn semijoin_count_matches_bruteforce(
        a_vals in prop::collection::vec(0i64..20, 1..8),
        b_fk in prop::collection::vec(any::<u8>(), 1..8),
        b_vals in prop::collection::vec(0i64..20, 8),
        c_fk in prop::collection::vec(any::<u8>(), 1..8),
        lo in 0i64..20,
        width in 0i64..20,
        pattern_pick in 0usize..4,
    ) {
        let b_vals = b_vals[..b_fk.len()].to_vec();
        let ds = chain_db(a_vals, b_fk, b_vals, c_fk);
        let exec = Executor::new(&ds);
        let tables = match pattern_pick {
            0 => vec![0],
            1 => vec![0, 1],
            2 => vec![1, 2],
            _ => vec![0, 1, 2],
        };
        let mut predicates = vec![];
        if tables.contains(&1) {
            predicates.push(Predicate { table: 1, col: 2, lo, hi: lo + width });
        } else if tables.contains(&0) {
            predicates.push(Predicate { table: 0, col: 1, lo, hi: lo + width });
        }
        let q = Query::new(tables, predicates);
        prop_assert_eq!(exec.count(&q), naive_count(&ds, &q));
    }

    #[test]
    fn count_monotone_in_predicate_width(
        a_vals in prop::collection::vec(0i64..30, 2..10),
        lo in 0i64..30,
        w1 in 0i64..15,
        extra in 1i64..15,
    ) {
        let ds = chain_db(a_vals, vec![0], vec![0], vec![0]);
        let exec = Executor::new(&ds);
        let narrow = Query::new(vec![0], vec![Predicate { table: 0, col: 1, lo, hi: lo + w1 }]);
        let wide = Query::new(vec![0], vec![Predicate { table: 0, col: 1, lo, hi: lo + w1 + extra }]);
        prop_assert!(exec.count(&narrow) <= exec.count(&wide));
    }

    #[test]
    fn encoder_decode_encode_is_stable(
        a_vals in prop::collection::vec(0i64..50, 2..10),
        b_vals in prop::collection::vec(0i64..50, 4),
        raw in prop::collection::vec(0f32..1.0, 3 + 2 * 2),
    ) {
        let ds = chain_db(a_vals, vec![0, 1, 2, 3], b_vals, vec![0]);
        let enc = QueryEncoder::new(&ds);
        // Force the join prefix to a valid pattern; bounds stay raw.
        let mut v = raw.clone();
        v[0] = 1.0;
        v[1] = 1.0;
        v[2] = 0.0;
        // Order each bound pair.
        for i in 0..2 {
            let lo = 3 + 2 * i;
            if v[lo] > v[lo + 1] {
                v.swap(lo, lo + 1);
            }
        }
        let q = enc.decode(&v);
        prop_assert!(q.is_valid(&ds.schema));
        let e1 = enc.encode(&q);
        let e2 = enc.encode(&enc.decode(&e1));
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn optimizer_plans_are_valid_permutations(
        cards in prop::collection::vec(1f64..1e6, 7),
    ) {
        // Random positive cardinalities for every subset of a 3-table chain.
        struct VecEst(Vec<f64>);
        impl CardEstimator for VecEst {
            fn estimate(&self, q: &Query) -> f64 {
                // Index by bitmask of the pattern.
                let mask = q.tables.iter().fold(0usize, |m, &t| m | (1 << t));
                self.0[mask - 1]
            }
        }
        let ds = chain_db(vec![1, 2], vec![0, 1], vec![3, 4], vec![0, 1]);
        let q = Query::new(vec![0, 1, 2], vec![]);
        let plan = optimize(&q, &ds.schema, &VecEst(cards));
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, vec![0, 1, 2]);
        for k in 1..=plan.order.len() {
            prop_assert!(ds.schema.is_connected(&plan.order[..k]));
        }
        prop_assert!(plan.est_cost.is_finite());
        prop_assert!(plan.est_cost > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_outputs_valid_queries_under_any_seed(seed in any::<u64>()) {
        use pace_core::{GeneratorConfig, PoisonGenerator};
        use pace_data::{build, DatasetKind, Scale};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 3);
        let enc = QueryEncoder::new(&ds);
        let patterns = ds.schema.connected_patterns(3);
        let generator = PoisonGenerator::new(enc, patterns, GeneratorConfig::default(), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let (queries, encs) = generator.generate(&mut rng, 16);
        for (q, e) in queries.iter().zip(&encs) {
            prop_assert!(q.is_valid(&ds.schema), "invalid query {:?}", q);
            prop_assert!(e.iter().all(|x| x.is_finite()));
        }
    }
}
