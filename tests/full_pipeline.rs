//! Cross-crate integration: the complete reproduction pipeline on a small
//! dataset, asserting the paper's qualitative shape end to end.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{run_attack, AttackMethod, AttackerKnowledge, BlackBox, PipelineConfig, Victim};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::{total_latency, CostModel, Executor, OracleEstimator};
use pace_workload::{generate_queries, QErrorSummary, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_reproduction_shape_on_dmv() {
    // Victim side.
    let ds = build(DatasetKind::Dmv, Scale::quick(), 77);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec::single_table();
    let mut rng = StdRng::seed_from_u64(78);
    let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 900));
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 150));
    let encoder = QueryEncoder::new(&ds);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 79);
    model
        .train(&EncodedWorkload::from_workload(&encoder, &train), &mut rng)
        .expect("victim training converges");
    let snapshot = model.params().snapshot();

    // Clean accuracy must be decent — attacks are only meaningful against a
    // model that actually works.
    let clean = QErrorSummary::from_samples(
        &model.evaluate(&EncodedWorkload::from_workload(&encoder, &test)),
    );
    assert!(
        clean.mean < 10.0,
        "victim under-trained: mean q-error {}",
        clean.mean
    );

    let history: Vec<_> = train.iter().map(|lq| lq.query.clone()).collect();
    let mut victim = Victim::new(model, Executor::new(&ds), history);
    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    cfg.surrogate_type = Some(CeModelType::Fcn);

    // Paper shape: PACE ≫ Random ≈ Clean.
    let random = run_attack(&mut victim, AttackMethod::Random, &test, &k, &cfg)
        .expect("attack campaign completes");
    victim.model_mut().params_mut().restore(&snapshot);
    let pace = run_attack(&mut victim, AttackMethod::Pace, &test, &k, &cfg)
        .expect("attack campaign completes");

    assert!(
        random.qerror_multiple() < 8.0,
        "benign-looking random queries should barely hurt: {}x",
        random.qerror_multiple()
    );
    assert!(
        pace.qerror_multiple() > 5.0,
        "PACE should hurt substantially: {}x",
        pace.qerror_multiple()
    );
    assert!(
        pace.qerror_multiple() > 2.0 * random.qerror_multiple(),
        "PACE ({:.1}x) must clearly dominate Random ({:.1}x)",
        pace.qerror_multiple(),
        random.qerror_multiple()
    );
    // Stealth: poisoning queries stay distributionally close to history.
    assert!(
        pace.divergence < 0.4,
        "divergence too high: {}",
        pace.divergence
    );
    // All injected queries are legal SQL over the schema.
    assert!(pace.poison.iter().all(|q| q.is_valid(&ds.schema)));
}

#[test]
fn poisoned_optimizer_does_more_true_work() {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 90);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec {
        max_join_tables: 3,
        ..WorkloadSpec::default()
    };
    let mut rng = StdRng::seed_from_u64(91);
    let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 900));
    let encoder = QueryEncoder::new(&ds);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 92);
    model
        .train(&EncodedWorkload::from_workload(&encoder, &train), &mut rng)
        .expect("victim training converges");

    let joins: Vec<_> = generate_queries(
        &ds,
        &WorkloadSpec {
            join_size_decay: 1.0,
            ..spec.clone()
        },
        &mut rng,
        200,
    )
    .into_iter()
    .filter(|q| q.tables.len() >= 2)
    .take(20)
    .collect();
    let target = exec.label(joins.clone());
    let cost = CostModel::default();
    let clean_latency = total_latency(&joins, &exec, &model, &cost);

    let history = train.iter().map(|lq| lq.query.clone()).collect();
    let mut victim = Victim::new(model, Executor::new(&ds), history);
    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    cfg.surrogate_type = Some(CeModelType::Fcn);
    cfg.attack.iters = 40;
    cfg.attack.batch = 64;
    cfg.attack.n_poison = 60;
    let outcome = run_attack(&mut victim, AttackMethod::Pace, &target, &k, &cfg)
        .expect("attack campaign completes");
    let poisoned_latency = total_latency(&joins, &exec, victim.model(), &cost);

    assert!(
        outcome.qerror_multiple() > 1.2,
        "attack failed: {}x",
        outcome.qerror_multiple()
    );
    assert!(
        poisoned_latency >= clean_latency * 0.99,
        "poisoning should not speed up execution: {clean_latency} -> {poisoned_latency}"
    );
    // Oracle is the lower bound on achievable latency.
    let oracle = OracleEstimator::new(Executor::new(&ds));
    let oracle_latency = total_latency(&joins, &exec, &oracle, &cost);
    assert!(oracle_latency <= clean_latency * 1.001);
}

#[test]
fn injected_queries_round_trip_through_victim_encoding() {
    // The victim re-encodes decoded queries; that re-encoding must be stable
    // (encode∘decode∘encode = encode∘decode), otherwise the attack surface
    // and the training surface silently diverge.
    let ds = build(DatasetKind::Stats, Scale::tiny(), 5);
    let encoder = QueryEncoder::new(&ds);
    let k = AttackerKnowledge::from_public(&ds, WorkloadSpec::default());
    let generator = pace_core::PoisonGenerator::new(
        encoder.clone(),
        k.patterns.clone(),
        pace_core::GeneratorConfig::default(),
        7,
    );
    let mut rng = StdRng::seed_from_u64(8);
    let (queries, _) = generator.generate(&mut rng, 40);
    for q in queries {
        let enc1 = encoder.encode(&q);
        let q2 = encoder.decode(&enc1);
        let enc2 = encoder.encode(&q2);
        assert_eq!(enc1, enc2, "unstable encode/decode for {q:?}");
    }
}

#[test]
fn victim_injection_is_observable_and_cumulative() {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), 60);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec::single_table();
    let mut rng = StdRng::seed_from_u64(61);
    let history = generate_queries(&ds, &spec, &mut rng, 50);
    let model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 62);
    let mut victim = Victim::new(model, exec, history.clone());
    victim
        .run_queries(&history[..10])
        .expect("no fault installed");
    victim
        .run_queries(&history[10..15])
        .expect("no fault installed");
    assert_eq!(victim.injected().len(), 15);
    assert!(victim.injected().iter().all(|lq| lq.cardinality >= 1));
}
