//! The "malicious competitor" scenario (paper Case 2): how poisoning the
//! cardinality estimator degrades *end-to-end query performance* — the
//! optimizer picks worse join orders, so the same queries process far more
//! tuples.
//!
//! ```text
//! cargo run --release --example optimizer_impact
//! ```

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{run_attack, AttackMethod, AttackerKnowledge, PipelineConfig, Victim};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::{optimize, run_plan, total_latency, CostModel, Executor, OracleEstimator};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = build(DatasetKind::Tpch, Scale::quick(), 9);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec {
        max_join_tables: 3,
        ..WorkloadSpec::default()
    };
    let mut rng = StdRng::seed_from_u64(21);

    // Train the victim estimator.
    let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 1200));
    let encoder = QueryEncoder::new(&ds);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 2);
    model
        .train(&EncodedWorkload::from_workload(&encoder, &train), &mut rng)
        .expect("victim training converges");

    // 20 multi-table join queries we will execute end to end.
    let join_spec = WorkloadSpec {
        join_size_decay: 1.0,
        max_join_tables: 4,
        ..spec.clone()
    };
    let joins: Vec<_> = generate_queries(&ds, &join_spec, &mut rng, 200)
        .into_iter()
        .filter(|q| q.tables.len() >= 2)
        .take(20)
        .collect();
    let cost = CostModel::default();

    // Reference points: a perfect oracle and the clean learned estimator.
    let oracle = OracleEstimator::new(Executor::new(&ds));
    let oracle_latency = total_latency(&joins, &exec, &oracle, &cost);
    let clean_latency = total_latency(&joins, &exec, &model, &cost);

    // Attack the estimator, then re-plan the same queries.
    let history = train.iter().map(|lq| lq.query.clone()).collect();
    let mut victim = Victim::new(model, Executor::new(&ds), history);
    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    cfg.surrogate_type = Some(CeModelType::Fcn);
    cfg.attack.n_poison = 60;
    cfg.attack.iters = 45;
    cfg.attack.batch = 64;
    // Target the executed join workload itself (as the paper's E2E
    // experiment does).
    let target = exec.label(joins.clone());
    let outcome = run_attack(&mut victim, AttackMethod::Pace, &target, &k, &cfg)
        .expect("attack campaign completes");
    let poisoned_latency = total_latency(&joins, &exec, victim.model(), &cost);

    println!("simulated E2E latency of 20 join queries:");
    println!("  perfect-oracle plans : {oracle_latency:8.2} s");
    println!("  clean learned model  : {clean_latency:8.2} s");
    println!("  poisoned model       : {poisoned_latency:8.2} s");
    println!(
        "\npoisoning raised estimator q-error {:.1}x and end-to-end latency {:.2}x",
        outcome.qerror_multiple(),
        poisoned_latency / clean_latency
    );

    // Show one query whose plan flipped.
    for q in &joins {
        let clean_plan = optimize(q, &ds.schema, &oracle);
        let poisoned_plan = optimize(q, &ds.schema, victim.model());
        if clean_plan.order != poisoned_plan.order {
            let good = run_plan(q, &exec, &clean_plan, &cost);
            let bad = run_plan(q, &exec, &poisoned_plan, &cost);
            println!("\nexample plan flip on tables {:?}:", q.tables);
            println!(
                "  oracle order  {:?} -> {:>10.0} tuples",
                good.order, good.true_work
            );
            println!(
                "  poisoned order {:?} -> {:>9.0} tuples",
                bad.order, bad.true_work
            );
            break;
        }
    }
}
