//! Defensive use of the framework (paper Section 8, "Improve the learned
//! database systems"): screen incoming queries with the VAE anomaly detector
//! before letting the estimator train on them, and measure how much of the
//! attack survives the filter.
//!
//! ```text
//! cargo run --release --example defense_audit
//! ```

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    craft_poison, AnomalyDetector, AttackMethod, AttackerKnowledge, DetectorConfig, PipelineConfig,
    Victim,
};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QErrorSummary, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = build(DatasetKind::Dmv, Scale::quick(), 17);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec::single_table();
    let mut rng = StdRng::seed_from_u64(23);
    let history = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 900));
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 150));
    let encoder = QueryEncoder::new(&ds);

    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 31);
    model
        .train(
            &EncodedWorkload::from_workload(&encoder, &history),
            &mut rng,
        )
        .expect("victim training converges");
    let snapshot = model.params().snapshot();
    let history_queries: Vec<_> = history.iter().map(|lq| lq.query.clone()).collect();
    let mut victim = Victim::new(model, Executor::new(&ds), history_queries.clone());

    // The attacker crafts PACE poison (without the stealth detector, i.e. the
    // loudest possible attack) — then the DBA's own detector screens it.
    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    cfg.surrogate_type = Some(CeModelType::Fcn);
    let (poison, _, _, _) = craft_poison(&victim, AttackMethod::PaceNoDetector, &test, &k, &cfg)
        .expect("poison crafting completes");

    // The DBA trains a detector on the trusted historical workload.
    let hist_enc: Vec<Vec<f32>> = history_queries.iter().map(|q| encoder.encode(q)).collect();
    let dba_cfg = DetectorConfig {
        threshold: 0.03,
        ..DetectorConfig::default()
    };
    let mut dba_detector = AnomalyDetector::new(encoder.dim(), dba_cfg, 41);
    dba_detector.train(&hist_enc, &mut rng);

    let poison_enc: Vec<Vec<f32>> = poison.iter().map(|q| encoder.encode(q)).collect();
    let flags = dba_detector.flag_abnormal(&poison_enc);
    let caught = flags.iter().filter(|&&f| f).count();
    let false_pos = dba_detector
        .flag_abnormal(&hist_enc)
        .iter()
        .filter(|&&f| f)
        .count();
    println!(
        "DBA detector flagged {caught}/{} poisoning queries",
        poison.len()
    );
    println!(
        "screening cost: {false_pos}/{} benign historical queries falsely flagged ({:.1}%)",
        hist_enc.len(),
        100.0 * false_pos as f64 / hist_enc.len() as f64
    );

    // Unprotected database: everything trains the model.
    let eval =
        |victim: &Victim<'_>| -> f64 { QErrorSummary::from_samples(&victim.q_errors(&test)).mean };
    let clean = eval(&victim);
    {
        use pace_core::BlackBox;
        victim.run_queries(&poison).expect("injection succeeds");
    }
    let unprotected = eval(&victim);

    // Protected database: only queries passing the screen train the model.
    victim.model_mut().params_mut().restore(&snapshot);
    let screened: Vec<_> = poison
        .iter()
        .zip(&flags)
        .filter(|(_, &flagged)| !flagged)
        .map(|(q, _)| q.clone())
        .collect();
    {
        use pace_core::BlackBox;
        victim.run_queries(&screened).expect("injection succeeds");
    }
    let protected = eval(&victim);

    println!("mean test q-error:");
    println!("  clean model            : {clean:8.2}");
    println!(
        "  poisoned, unprotected  : {unprotected:8.2} ({:.0}x)",
        unprotected / clean
    );
    println!(
        "  poisoned, screened     : {protected:8.2} ({:.1}x)",
        protected / clean
    );
    if protected < unprotected {
        println!(
            "\nscreening absorbed {:.0}% of the attack's damage",
            (1.0 - (protected - clean) / (unprotected - clean).max(1e-9)) * 100.0
        );
    }
}
