//! Quickstart: build a synthetic database, train a learned cardinality
//! estimator, and compare its estimates against exact counts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QErrorSummary, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic TPC-H instance (8 tables, tree-shaped join graph).
    let ds = build(DatasetKind::Tpch, Scale::quick(), 42);
    println!(
        "dataset: {} tables, {} rows total, {} filterable attributes",
        ds.schema.num_tables(),
        ds.total_rows(),
        ds.schema.num_attributes()
    );

    // 2. A training workload labeled with exact cardinalities.
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(7);
    let spec = WorkloadSpec::default();
    let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 1500));
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 200));
    println!(
        "workload: {} training / {} test queries",
        train.len(),
        test.len()
    );

    // 3. Train an MSCN estimator on (query → cardinality) pairs.
    let encoder = QueryEncoder::new(&ds);
    let train_data = EncodedWorkload::from_workload(&encoder, &train);
    let test_data = EncodedWorkload::from_workload(&encoder, &test);
    let mut model = CeModel::new(CeModelType::Mscn, &ds, CeConfig::quick(), 1);
    let final_loss = model
        .train(&train_data, &mut rng)
        .expect("training converges");
    println!("trained MSCN, final epoch loss {final_loss:.3}");

    // 4. Evaluate with the Q-error metric.
    let summary = QErrorSummary::from_samples(&model.evaluate(&test_data));
    println!(
        "test q-error: mean {:.2}, median {:.2}, p95 {:.2}, max {:.2}",
        summary.mean, summary.median, summary.p95, summary.max
    );

    // 5. Estimate one query by hand.
    let q = &test[0].query;
    println!(
        "example query over tables {:?}: estimated {:.0}, true {}",
        q.tables,
        model.estimate_query(q),
        test[0].cardinality
    );
}
