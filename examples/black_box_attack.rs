//! The paper's Figure 1 scenario, end to end: Alice has only black-box access
//! to a database whose optimizer uses a learned cardinality estimator. She
//! speculates the model's type, trains a surrogate, trains a poisoning-query
//! generator against it, and injects queries that the estimator will
//! incrementally train on — wrecking its accuracy while the queries stay
//! close to the historical workload.
//!
//! ```text
//! cargo run --release --example black_box_attack
//! ```

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    run_attack, speculate_model_type, AttackMethod, AttackerKnowledge, PipelineConfig, Victim,
};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- The victim's side ---------------------------------------------------
    let ds = build(DatasetKind::Dmv, Scale::quick(), 3);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec::single_table();
    let mut rng = StdRng::seed_from_u64(11);
    let history_q = generate_queries(&ds, &spec, &mut rng, 900);
    let history = exec.label_nonzero(history_q);
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 150));

    let encoder = QueryEncoder::new(&ds);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 5);
    model
        .train(
            &EncodedWorkload::from_workload(&encoder, &history),
            &mut rng,
        )
        .expect("victim training converges");
    let history_queries = history.iter().map(|lq| lq.query.clone()).collect();
    let mut victim = Victim::new(model, Executor::new(&ds), history_queries);
    println!(
        "victim: FCN estimator trained on {} historical queries",
        history.len()
    );

    // --- Alice's side (black-box) --------------------------------------------
    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    cfg.attack.n_poison = 45;
    cfg.attack.iters = 30;

    // Step 1: speculate the hidden model's type from behavioral probes.
    let speculation =
        speculate_model_type(&victim, &k, &cfg.speculation).expect("speculation completes");
    println!("speculated model type: {}", speculation.speculated.name());
    for (ty, sim) in &speculation.similarities {
        println!("  behavior similarity vs {:>8}: {sim:.3}", ty.name());
    }
    cfg.surrogate_type = Some(speculation.speculated);

    // Steps 2–3: surrogate training, generator training, injection.
    let outcome = run_attack(&mut victim, AttackMethod::Pace, &test, &k, &cfg)
        .expect("attack campaign completes");

    println!("\ninjected {} poisoning queries", outcome.poison.len());
    println!(
        "  mean q-error: {:.2} -> {:.2} ({:.0}x)",
        outcome.clean.mean,
        outcome.poisoned.mean,
        outcome.qerror_multiple()
    );
    println!(
        "  p95  q-error: {:.2} -> {:.2}",
        outcome.clean.p95, outcome.poisoned.p95
    );
    println!(
        "  JS divergence of poison vs historical workload: {:.4}",
        outcome.divergence
    );
    println!(
        "  overhead: train {:.1}s, generate {:.3}s, inject {:.3}s",
        outcome.train_seconds, outcome.generate_seconds, outcome.attack_seconds
    );
    let sample = &outcome.poison[0];
    println!("\na poisoning query looks perfectly ordinary: {sample:?}");
}
