//! Budget-constrained poisoning (paper Section 8, future work): the attacker
//! can only afford a handful of queries, so they generate a candidate pool
//! with PACE's generator and greedily keep the few with the highest joint
//! simulated damage.
//!
//! ```text
//! cargo run --release --example budgeted_attack
//! ```

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{
    craft_poison, select_budgeted_poison, AttackMethod, AttackerKnowledge, BlackBox,
    PipelineConfig, Victim,
};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QErrorSummary, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = build(DatasetKind::Dmv, Scale::quick(), 29);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec::single_table();
    let mut rng = StdRng::seed_from_u64(30);
    let history = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 900));
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 150));
    let encoder = QueryEncoder::new(&ds);

    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 31);
    model
        .train(
            &EncodedWorkload::from_workload(&encoder, &history),
            &mut rng,
        )
        .expect("victim training converges");
    let snapshot = model.params().snapshot();
    let history_q: Vec<_> = history.iter().map(|lq| lq.query.clone()).collect();
    let mut victim = Victim::new(model, Executor::new(&ds), history_q);

    // Full PACE crafts a 45-query payload; we can only afford 8.
    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    cfg.surrogate_type = Some(CeModelType::Fcn);
    let (pool, _, _, _) = craft_poison(&victim, AttackMethod::Pace, &test, &k, &cfg)
        .expect("poison crafting completes");
    println!(
        "candidate pool from the trained generator: {} queries",
        pool.len()
    );

    // Greedy marginal-damage selection against a surrogate simulation.
    let surrogate = pace_core::train_surrogate(&victim, &k, CeModelType::Fcn, &cfg.surrogate)
        .expect("surrogate training completes");
    let test_data = EncodedWorkload::from_workload(&encoder, &test);
    let budget = 8;
    let selection = select_budgeted_poison(
        &surrogate, &victim, &k.encoder, &pool, &test_data, budget, &cfg.retry,
    )
    .expect("budgeted selection completes");
    println!(
        "selected {} queries (budget {budget}); simulated damage curve:",
        selection.queries.len()
    );
    for (i, d) in selection.damage_curve.iter().enumerate() {
        println!(
            "  after query {:>2}: simulated mean q-error {:8.2}",
            i + 1,
            d
        );
    }

    // Deploy both and compare.
    let eval = |v: &Victim<'_>| QErrorSummary::from_samples(&v.q_errors(&test)).mean;
    let clean = eval(&victim);
    victim
        .run_queries(&selection.queries)
        .expect("injection succeeds");
    let budgeted = eval(&victim);
    victim.model_mut().params_mut().restore(&snapshot);
    victim.run_queries(&pool).expect("injection succeeds");
    let full = eval(&victim);

    println!("\nmean test q-error:");
    println!("  clean                      : {clean:8.2}");
    println!(
        "  {budget:>2}-query budgeted attack   : {budgeted:8.2} ({:.0}x)",
        budgeted / clean
    );
    println!(
        "  {:>2}-query full attack       : {full:8.2} ({:.0}x)",
        pool.len(),
        full / clean
    );
    let kept = 100.0 * (budgeted - clean) / (full - clean).max(1e-9);
    if kept > 100.0 {
        println!(
            "\nthe budgeted attack *exceeds* the full attack with {:.0}% of the queries: \
             full-batch updates average gradients, so a concentrated payload avoids dilution \
             (the greedy selector stops adding queries for exactly this reason)",
            100.0 * selection.queries.len() as f64 / pool.len() as f64
        );
    } else {
        println!(
            "\nthe budgeted attack keeps {kept:.0}% of the damage with {:.0}% of the queries",
            100.0 * selection.queries.len() as f64 / pool.len() as f64
        );
    }
}
