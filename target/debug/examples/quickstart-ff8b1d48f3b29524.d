/root/repo/target/debug/examples/quickstart-ff8b1d48f3b29524.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ff8b1d48f3b29524.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
