/root/repo/target/debug/examples/black_box_attack-cfde957091444f02.d: examples/black_box_attack.rs Cargo.toml

/root/repo/target/debug/examples/libblack_box_attack-cfde957091444f02.rmeta: examples/black_box_attack.rs Cargo.toml

examples/black_box_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
