/root/repo/target/debug/examples/defense_audit-b02a063570197141.d: examples/defense_audit.rs

/root/repo/target/debug/examples/defense_audit-b02a063570197141: examples/defense_audit.rs

examples/defense_audit.rs:
