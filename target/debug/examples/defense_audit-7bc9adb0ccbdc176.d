/root/repo/target/debug/examples/defense_audit-7bc9adb0ccbdc176.d: examples/defense_audit.rs Cargo.toml

/root/repo/target/debug/examples/libdefense_audit-7bc9adb0ccbdc176.rmeta: examples/defense_audit.rs Cargo.toml

examples/defense_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
