/root/repo/target/debug/examples/quickstart-85acdac34afd439e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-85acdac34afd439e: examples/quickstart.rs

examples/quickstart.rs:
