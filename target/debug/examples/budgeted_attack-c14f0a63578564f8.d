/root/repo/target/debug/examples/budgeted_attack-c14f0a63578564f8.d: examples/budgeted_attack.rs Cargo.toml

/root/repo/target/debug/examples/libbudgeted_attack-c14f0a63578564f8.rmeta: examples/budgeted_attack.rs Cargo.toml

examples/budgeted_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
