/root/repo/target/debug/examples/black_box_attack-c5f1105a35fedf87.d: examples/black_box_attack.rs

/root/repo/target/debug/examples/black_box_attack-c5f1105a35fedf87: examples/black_box_attack.rs

examples/black_box_attack.rs:
