/root/repo/target/debug/examples/optimizer_impact-8c583db7eb7e5c15.d: examples/optimizer_impact.rs Cargo.toml

/root/repo/target/debug/examples/liboptimizer_impact-8c583db7eb7e5c15.rmeta: examples/optimizer_impact.rs Cargo.toml

examples/optimizer_impact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
