/root/repo/target/debug/examples/budgeted_attack-1709c4b0e4356008.d: examples/budgeted_attack.rs

/root/repo/target/debug/examples/budgeted_attack-1709c4b0e4356008: examples/budgeted_attack.rs

examples/budgeted_attack.rs:
