/root/repo/target/debug/examples/optimizer_impact-db354158c2338d2a.d: examples/optimizer_impact.rs

/root/repo/target/debug/examples/optimizer_impact-db354158c2338d2a: examples/optimizer_impact.rs

examples/optimizer_impact.rs:
