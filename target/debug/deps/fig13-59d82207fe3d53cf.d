/root/repo/target/debug/deps/fig13-59d82207fe3d53cf.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-59d82207fe3d53cf.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
