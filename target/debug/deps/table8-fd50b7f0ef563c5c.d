/root/repo/target/debug/deps/table8-fd50b7f0ef563c5c.d: crates/bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-fd50b7f0ef563c5c.rmeta: crates/bench/src/bin/table8.rs Cargo.toml

crates/bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
