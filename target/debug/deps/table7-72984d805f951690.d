/root/repo/target/debug/deps/table7-72984d805f951690.d: crates/bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-72984d805f951690.rmeta: crates/bench/src/bin/table7.rs Cargo.toml

crates/bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
