/root/repo/target/debug/deps/table6-0fb0cb9f7f3834df.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-0fb0cb9f7f3834df.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
