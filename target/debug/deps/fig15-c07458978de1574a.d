/root/repo/target/debug/deps/fig15-c07458978de1574a.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-c07458978de1574a: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
