/root/repo/target/debug/deps/design_ablation-3a4ed0b27570efc6.d: crates/bench/src/bin/design_ablation.rs

/root/repo/target/debug/deps/design_ablation-3a4ed0b27570efc6: crates/bench/src/bin/design_ablation.rs

crates/bench/src/bin/design_ablation.rs:
