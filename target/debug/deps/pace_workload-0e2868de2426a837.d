/root/repo/target/debug/deps/pace_workload-0e2868de2426a837.d: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

/root/repo/target/debug/deps/libpace_workload-0e2868de2426a837.rlib: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

/root/repo/target/debug/deps/libpace_workload-0e2868de2426a837.rmeta: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

crates/workload/src/lib.rs:
crates/workload/src/encode.rs:
crates/workload/src/gen.rs:
crates/workload/src/metrics.rs:
crates/workload/src/query.rs:
crates/workload/src/templates.rs:
