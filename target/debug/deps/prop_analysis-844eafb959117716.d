/root/repo/target/debug/deps/prop_analysis-844eafb959117716.d: crates/tensor/tests/prop_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libprop_analysis-844eafb959117716.rmeta: crates/tensor/tests/prop_analysis.rs Cargo.toml

crates/tensor/tests/prop_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
