/root/repo/target/debug/deps/rand-7407020b30b8fe5c.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7407020b30b8fe5c.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7407020b30b8fe5c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
