/root/repo/target/debug/deps/table9-49c3725ffbe65178.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-49c3725ffbe65178: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
