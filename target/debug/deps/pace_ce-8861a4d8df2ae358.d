/root/repo/target/debug/deps/pace_ce-8861a4d8df2ae358.d: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libpace_ce-8861a4d8df2ae358.rmeta: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs Cargo.toml

crates/ce/src/lib.rs:
crates/ce/src/config.rs:
crates/ce/src/loss.rs:
crates/ce/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
