/root/repo/target/debug/deps/fig12-4945395f158773d5.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-4945395f158773d5: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
