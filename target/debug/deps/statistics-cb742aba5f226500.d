/root/repo/target/debug/deps/statistics-cb742aba5f226500.d: crates/data/tests/statistics.rs

/root/repo/target/debug/deps/statistics-cb742aba5f226500: crates/data/tests/statistics.rs

crates/data/tests/statistics.rs:
