/root/repo/target/debug/deps/debug_victims-c64e384362eef62e.d: crates/bench/src/bin/debug_victims.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_victims-c64e384362eef62e.rmeta: crates/bench/src/bin/debug_victims.rs Cargo.toml

crates/bench/src/bin/debug_victims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
