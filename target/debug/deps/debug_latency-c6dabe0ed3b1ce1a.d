/root/repo/target/debug/deps/debug_latency-c6dabe0ed3b1ce1a.d: crates/bench/src/bin/debug_latency.rs

/root/repo/target/debug/deps/debug_latency-c6dabe0ed3b1ce1a: crates/bench/src/bin/debug_latency.rs

crates/bench/src/bin/debug_latency.rs:
