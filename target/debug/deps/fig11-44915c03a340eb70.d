/root/repo/target/debug/deps/fig11-44915c03a340eb70.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-44915c03a340eb70: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
