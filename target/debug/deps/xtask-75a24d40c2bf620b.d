/root/repo/target/debug/deps/xtask-75a24d40c2bf620b.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-75a24d40c2bf620b: crates/xtask/src/main.rs

crates/xtask/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
