/root/repo/target/debug/deps/debug_attack-3a417d662f1ec221.d: crates/bench/src/bin/debug_attack.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_attack-3a417d662f1ec221.rmeta: crates/bench/src/bin/debug_attack.rs Cargo.toml

crates/bench/src/bin/debug_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
