/root/repo/target/debug/deps/table8-0b51c74d243a2092.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-0b51c74d243a2092: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
