/root/repo/target/debug/deps/table7-da74f9c03486d4d0.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-da74f9c03486d4d0: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
