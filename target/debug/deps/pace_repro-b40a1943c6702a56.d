/root/repo/target/debug/deps/pace_repro-b40a1943c6702a56.d: src/lib.rs

/root/repo/target/debug/deps/libpace_repro-b40a1943c6702a56.rlib: src/lib.rs

/root/repo/target/debug/deps/libpace_repro-b40a1943c6702a56.rmeta: src/lib.rs

src/lib.rs:
