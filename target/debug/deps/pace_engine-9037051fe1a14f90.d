/root/repo/target/debug/deps/pace_engine-9037051fe1a14f90.d: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

/root/repo/target/debug/deps/pace_engine-9037051fe1a14f90: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

crates/engine/src/lib.rs:
crates/engine/src/count.rs:
crates/engine/src/estimator.rs:
crates/engine/src/exec.rs:
crates/engine/src/optimizer.rs:
crates/engine/src/traditional.rs:
