/root/repo/target/debug/deps/properties-1dd0ff9513f043a3.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1dd0ff9513f043a3.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
