/root/repo/target/debug/deps/models-fba66a97a20e12ed.d: crates/ce/tests/models.rs

/root/repo/target/debug/deps/models-fba66a97a20e12ed: crates/ce/tests/models.rs

crates/ce/tests/models.rs:
