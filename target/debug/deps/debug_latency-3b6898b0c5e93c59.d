/root/repo/target/debug/deps/debug_latency-3b6898b0c5e93c59.d: crates/bench/src/bin/debug_latency.rs

/root/repo/target/debug/deps/debug_latency-3b6898b0c5e93c59: crates/bench/src/bin/debug_latency.rs

crates/bench/src/bin/debug_latency.rs:
