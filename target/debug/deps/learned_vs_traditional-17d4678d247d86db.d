/root/repo/target/debug/deps/learned_vs_traditional-17d4678d247d86db.d: crates/bench/src/bin/learned_vs_traditional.rs

/root/repo/target/debug/deps/learned_vs_traditional-17d4678d247d86db: crates/bench/src/bin/learned_vs_traditional.rs

crates/bench/src/bin/learned_vs_traditional.rs:
