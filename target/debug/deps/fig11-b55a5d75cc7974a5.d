/root/repo/target/debug/deps/fig11-b55a5d75cc7974a5.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-b55a5d75cc7974a5.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
