/root/repo/target/debug/deps/components-beef958f359881ef.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-beef958f359881ef.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
