/root/repo/target/debug/deps/xtask-5af337c477092ca4.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-5af337c477092ca4.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
