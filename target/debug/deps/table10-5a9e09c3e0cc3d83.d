/root/repo/target/debug/deps/table10-5a9e09c3e0cc3d83.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-5a9e09c3e0cc3d83: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
