/root/repo/target/debug/deps/gradcheck-f7b7f1c0de6dc4b6.d: crates/tensor/tests/gradcheck.rs

/root/repo/target/debug/deps/gradcheck-f7b7f1c0de6dc4b6: crates/tensor/tests/gradcheck.rs

crates/tensor/tests/gradcheck.rs:
