/root/repo/target/debug/deps/fig10-dc0cda8c6ee94fd4.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-dc0cda8c6ee94fd4: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
