/root/repo/target/debug/deps/pace_data-612cd6b2a0dd03a8.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpace_data-612cd6b2a0dd03a8.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/datasets.rs:
crates/data/src/distr.rs:
crates/data/src/schema.rs:
crates/data/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
