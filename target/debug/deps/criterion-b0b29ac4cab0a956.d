/root/repo/target/debug/deps/criterion-b0b29ac4cab0a956.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b0b29ac4cab0a956.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
