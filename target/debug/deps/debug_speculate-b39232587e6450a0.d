/root/repo/target/debug/deps/debug_speculate-b39232587e6450a0.d: crates/bench/src/bin/debug_speculate.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_speculate-b39232587e6450a0.rmeta: crates/bench/src/bin/debug_speculate.rs Cargo.toml

crates/bench/src/bin/debug_speculate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
