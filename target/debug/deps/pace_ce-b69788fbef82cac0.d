/root/repo/target/debug/deps/pace_ce-b69788fbef82cac0.d: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

/root/repo/target/debug/deps/pace_ce-b69788fbef82cac0: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

crates/ce/src/lib.rs:
crates/ce/src/config.rs:
crates/ce/src/loss.rs:
crates/ce/src/model.rs:
