/root/repo/target/debug/deps/run_all-281b2c8af4267481.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-281b2c8af4267481.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
