/root/repo/target/debug/deps/rand-b1d6e5b623a497a6.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-b1d6e5b623a497a6.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
