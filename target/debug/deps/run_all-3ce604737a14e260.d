/root/repo/target/debug/deps/run_all-3ce604737a14e260.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-3ce604737a14e260: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
