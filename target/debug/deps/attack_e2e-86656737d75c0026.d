/root/repo/target/debug/deps/attack_e2e-86656737d75c0026.d: crates/core/tests/attack_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libattack_e2e-86656737d75c0026.rmeta: crates/core/tests/attack_e2e.rs Cargo.toml

crates/core/tests/attack_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
