/root/repo/target/debug/deps/design_ablation-1d467a4815e89f0e.d: crates/bench/src/bin/design_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_ablation-1d467a4815e89f0e.rmeta: crates/bench/src/bin/design_ablation.rs Cargo.toml

crates/bench/src/bin/design_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
