/root/repo/target/debug/deps/table10-8df1ff9496b7e7ef.d: crates/bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-8df1ff9496b7e7ef.rmeta: crates/bench/src/bin/table10.rs Cargo.toml

crates/bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
