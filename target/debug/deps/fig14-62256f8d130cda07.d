/root/repo/target/debug/deps/fig14-62256f8d130cda07.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-62256f8d130cda07: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
