/root/repo/target/debug/deps/learned_vs_traditional-85dd8c1831156dd6.d: crates/bench/src/bin/learned_vs_traditional.rs Cargo.toml

/root/repo/target/debug/deps/liblearned_vs_traditional-85dd8c1831156dd6.rmeta: crates/bench/src/bin/learned_vs_traditional.rs Cargo.toml

crates/bench/src/bin/learned_vs_traditional.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
