/root/repo/target/debug/deps/prop_analysis-af78b7bd137a44d5.d: crates/tensor/tests/prop_analysis.rs

/root/repo/target/debug/deps/prop_analysis-af78b7bd137a44d5: crates/tensor/tests/prop_analysis.rs

crates/tensor/tests/prop_analysis.rs:
