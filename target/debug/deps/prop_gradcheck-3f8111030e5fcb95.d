/root/repo/target/debug/deps/prop_gradcheck-3f8111030e5fcb95.d: crates/tensor/tests/prop_gradcheck.rs Cargo.toml

/root/repo/target/debug/deps/libprop_gradcheck-3f8111030e5fcb95.rmeta: crates/tensor/tests/prop_gradcheck.rs Cargo.toml

crates/tensor/tests/prop_gradcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
