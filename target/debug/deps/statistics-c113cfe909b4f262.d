/root/repo/target/debug/deps/statistics-c113cfe909b4f262.d: crates/data/tests/statistics.rs Cargo.toml

/root/repo/target/debug/deps/libstatistics-c113cfe909b4f262.rmeta: crates/data/tests/statistics.rs Cargo.toml

crates/data/tests/statistics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
