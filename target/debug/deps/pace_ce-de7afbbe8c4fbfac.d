/root/repo/target/debug/deps/pace_ce-de7afbbe8c4fbfac.d: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

/root/repo/target/debug/deps/libpace_ce-de7afbbe8c4fbfac.rlib: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

/root/repo/target/debug/deps/libpace_ce-de7afbbe8c4fbfac.rmeta: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

crates/ce/src/lib.rs:
crates/ce/src/config.rs:
crates/ce/src/loss.rs:
crates/ce/src/model.rs:
