/root/repo/target/debug/deps/criterion-df934abab75ee4e1.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-df934abab75ee4e1.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
