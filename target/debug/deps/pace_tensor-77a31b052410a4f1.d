/root/repo/target/debug/deps/pace_tensor-77a31b052410a4f1.d: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libpace_tensor-77a31b052410a4f1.rmeta: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/analysis.rs:
crates/tensor/src/check.rs:
crates/tensor/src/grad.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/nn.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
