/root/repo/target/debug/deps/pace_repro-9ebba5f1bdfe31a4.d: src/lib.rs

/root/repo/target/debug/deps/pace_repro-9ebba5f1bdfe31a4: src/lib.rs

src/lib.rs:
