/root/repo/target/debug/deps/table8-42c61c64d83a0028.d: crates/bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-42c61c64d83a0028.rmeta: crates/bench/src/bin/table8.rs Cargo.toml

crates/bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
