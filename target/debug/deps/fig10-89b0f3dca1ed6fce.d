/root/repo/target/debug/deps/fig10-89b0f3dca1ed6fce.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-89b0f3dca1ed6fce.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
