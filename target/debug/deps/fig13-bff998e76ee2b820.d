/root/repo/target/debug/deps/fig13-bff998e76ee2b820.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-bff998e76ee2b820: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
