/root/repo/target/debug/deps/fig11-e9f0d9f279f3b4d5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-e9f0d9f279f3b4d5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
