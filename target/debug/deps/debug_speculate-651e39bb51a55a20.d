/root/repo/target/debug/deps/debug_speculate-651e39bb51a55a20.d: crates/bench/src/bin/debug_speculate.rs

/root/repo/target/debug/deps/debug_speculate-651e39bb51a55a20: crates/bench/src/bin/debug_speculate.rs

crates/bench/src/bin/debug_speculate.rs:
