/root/repo/target/debug/deps/pace_data-b7a546b96ca6a0f5.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

/root/repo/target/debug/deps/libpace_data-b7a546b96ca6a0f5.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

/root/repo/target/debug/deps/libpace_data-b7a546b96ca6a0f5.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/datasets.rs:
crates/data/src/distr.rs:
crates/data/src/schema.rs:
crates/data/src/table.rs:
