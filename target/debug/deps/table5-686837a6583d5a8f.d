/root/repo/target/debug/deps/table5-686837a6583d5a8f.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-686837a6583d5a8f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
