/root/repo/target/debug/deps/fig13-d6e8e2ef7514ca37.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-d6e8e2ef7514ca37: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
