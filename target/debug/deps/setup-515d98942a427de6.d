/root/repo/target/debug/deps/setup-515d98942a427de6.d: crates/bench/tests/setup.rs

/root/repo/target/debug/deps/setup-515d98942a427de6: crates/bench/tests/setup.rs

crates/bench/tests/setup.rs:
