/root/repo/target/debug/deps/pace_data-3738910434563540.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

/root/repo/target/debug/deps/pace_data-3738910434563540: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/datasets.rs:
crates/data/src/distr.rs:
crates/data/src/schema.rs:
crates/data/src/table.rs:
