/root/repo/target/debug/deps/fig15-90620a51fc20956f.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-90620a51fc20956f.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
