/root/repo/target/debug/deps/table10-6fcec156c3907296.d: crates/bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-6fcec156c3907296.rmeta: crates/bench/src/bin/table10.rs Cargo.toml

crates/bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
