/root/repo/target/debug/deps/rand-990f36b03a46179f.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-990f36b03a46179f.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
