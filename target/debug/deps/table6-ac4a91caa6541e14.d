/root/repo/target/debug/deps/table6-ac4a91caa6541e14.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-ac4a91caa6541e14: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
