/root/repo/target/debug/deps/run_all-9f1f4c4d026d42a0.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-9f1f4c4d026d42a0.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
