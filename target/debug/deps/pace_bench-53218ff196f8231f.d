/root/repo/target/debug/deps/pace_bench-53218ff196f8231f.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs

/root/repo/target/debug/deps/pace_bench-53218ff196f8231f: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/accuracy.rs:
crates/bench/src/experiments/design_ablation.rs:
crates/bench/src/experiments/dynamics.rs:
crates/bench/src/experiments/e2e.rs:
crates/bench/src/experiments/surrogate_exp.rs:
crates/bench/src/experiments/traditional_exp.rs:
crates/bench/src/grid.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
