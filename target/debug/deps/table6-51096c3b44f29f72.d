/root/repo/target/debug/deps/table6-51096c3b44f29f72.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-51096c3b44f29f72.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
