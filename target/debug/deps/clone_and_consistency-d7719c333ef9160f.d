/root/repo/target/debug/deps/clone_and_consistency-d7719c333ef9160f.d: crates/ce/tests/clone_and_consistency.rs

/root/repo/target/debug/deps/clone_and_consistency-d7719c333ef9160f: crates/ce/tests/clone_and_consistency.rs

crates/ce/tests/clone_and_consistency.rs:
