/root/repo/target/debug/deps/full_pipeline-e75257aa02b0c830.d: tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-e75257aa02b0c830.rmeta: tests/full_pipeline.rs Cargo.toml

tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
