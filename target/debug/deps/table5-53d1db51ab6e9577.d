/root/repo/target/debug/deps/table5-53d1db51ab6e9577.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-53d1db51ab6e9577.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
