/root/repo/target/debug/deps/debug_victims-81ec9cae37267a10.d: crates/bench/src/bin/debug_victims.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_victims-81ec9cae37267a10.rmeta: crates/bench/src/bin/debug_victims.rs Cargo.toml

crates/bench/src/bin/debug_victims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
