/root/repo/target/debug/deps/properties-2da14b02e1ac1cdf.d: tests/properties.rs

/root/repo/target/debug/deps/properties-2da14b02e1ac1cdf: tests/properties.rs

tests/properties.rs:
