/root/repo/target/debug/deps/fig6_9-687da607197b36ef.d: crates/bench/src/bin/fig6_9.rs

/root/repo/target/debug/deps/fig6_9-687da607197b36ef: crates/bench/src/bin/fig6_9.rs

crates/bench/src/bin/fig6_9.rs:
