/root/repo/target/debug/deps/deep_joins-90d3e83f5dc1fa29.d: crates/engine/tests/deep_joins.rs

/root/repo/target/debug/deps/deep_joins-90d3e83f5dc1fa29: crates/engine/tests/deep_joins.rs

crates/engine/tests/deep_joins.rs:
