/root/repo/target/debug/deps/full_pipeline-ae7f7ce4393039e6.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-ae7f7ce4393039e6: tests/full_pipeline.rs

tests/full_pipeline.rs:
