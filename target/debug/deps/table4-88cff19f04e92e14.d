/root/repo/target/debug/deps/table4-88cff19f04e92e14.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-88cff19f04e92e14.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
