/root/repo/target/debug/deps/proptest-5769f9d38caeab28.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-5769f9d38caeab28: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
