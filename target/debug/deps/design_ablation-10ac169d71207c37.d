/root/repo/target/debug/deps/design_ablation-10ac169d71207c37.d: crates/bench/src/bin/design_ablation.rs

/root/repo/target/debug/deps/design_ablation-10ac169d71207c37: crates/bench/src/bin/design_ablation.rs

crates/bench/src/bin/design_ablation.rs:
