/root/repo/target/debug/deps/debug_latency-ef7cd117464ae1ba.d: crates/bench/src/bin/debug_latency.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_latency-ef7cd117464ae1ba.rmeta: crates/bench/src/bin/debug_latency.rs Cargo.toml

crates/bench/src/bin/debug_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
