/root/repo/target/debug/deps/table10-a7b5a3bbc1f15d4a.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-a7b5a3bbc1f15d4a: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
