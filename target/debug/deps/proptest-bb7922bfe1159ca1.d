/root/repo/target/debug/deps/proptest-bb7922bfe1159ca1.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bb7922bfe1159ca1.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
