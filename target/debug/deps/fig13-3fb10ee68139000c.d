/root/repo/target/debug/deps/fig13-3fb10ee68139000c.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-3fb10ee68139000c.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
