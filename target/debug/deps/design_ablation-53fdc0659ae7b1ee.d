/root/repo/target/debug/deps/design_ablation-53fdc0659ae7b1ee.d: crates/bench/src/bin/design_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_ablation-53fdc0659ae7b1ee.rmeta: crates/bench/src/bin/design_ablation.rs Cargo.toml

crates/bench/src/bin/design_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
