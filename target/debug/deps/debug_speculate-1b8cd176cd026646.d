/root/repo/target/debug/deps/debug_speculate-1b8cd176cd026646.d: crates/bench/src/bin/debug_speculate.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_speculate-1b8cd176cd026646.rmeta: crates/bench/src/bin/debug_speculate.rs Cargo.toml

crates/bench/src/bin/debug_speculate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
