/root/repo/target/debug/deps/gradcheck-37ed4dc5bb3bae44.d: crates/tensor/tests/gradcheck.rs Cargo.toml

/root/repo/target/debug/deps/libgradcheck-37ed4dc5bb3bae44.rmeta: crates/tensor/tests/gradcheck.rs Cargo.toml

crates/tensor/tests/gradcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
