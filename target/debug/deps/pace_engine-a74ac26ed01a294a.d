/root/repo/target/debug/deps/pace_engine-a74ac26ed01a294a.d: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

/root/repo/target/debug/deps/libpace_engine-a74ac26ed01a294a.rlib: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

/root/repo/target/debug/deps/libpace_engine-a74ac26ed01a294a.rmeta: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

crates/engine/src/lib.rs:
crates/engine/src/count.rs:
crates/engine/src/estimator.rs:
crates/engine/src/exec.rs:
crates/engine/src/optimizer.rs:
crates/engine/src/traditional.rs:
