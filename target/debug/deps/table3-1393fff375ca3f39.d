/root/repo/target/debug/deps/table3-1393fff375ca3f39.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-1393fff375ca3f39: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
