/root/repo/target/debug/deps/pace_tensor-1086d624f115c91e.d: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs

/root/repo/target/debug/deps/libpace_tensor-1086d624f115c91e.rlib: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs

/root/repo/target/debug/deps/libpace_tensor-1086d624f115c91e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs

crates/tensor/src/lib.rs:
crates/tensor/src/analysis.rs:
crates/tensor/src/check.rs:
crates/tensor/src/grad.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/nn.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/serialize.rs:
