/root/repo/target/debug/deps/pace_repro-3883eb6203180233.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpace_repro-3883eb6203180233.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
