/root/repo/target/debug/deps/table9-e62881fa17458d8e.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-e62881fa17458d8e: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
