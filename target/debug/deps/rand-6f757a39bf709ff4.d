/root/repo/target/debug/deps/rand-6f757a39bf709ff4.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-6f757a39bf709ff4: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
