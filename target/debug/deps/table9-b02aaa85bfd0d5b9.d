/root/repo/target/debug/deps/table9-b02aaa85bfd0d5b9.d: crates/bench/src/bin/table9.rs Cargo.toml

/root/repo/target/debug/deps/libtable9-b02aaa85bfd0d5b9.rmeta: crates/bench/src/bin/table9.rs Cargo.toml

crates/bench/src/bin/table9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
