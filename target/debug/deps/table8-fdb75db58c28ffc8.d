/root/repo/target/debug/deps/table8-fdb75db58c28ffc8.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-fdb75db58c28ffc8: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
