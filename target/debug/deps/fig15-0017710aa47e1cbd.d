/root/repo/target/debug/deps/fig15-0017710aa47e1cbd.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-0017710aa47e1cbd: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
