/root/repo/target/debug/deps/fig10-f67ad7daeac6fdfd.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-f67ad7daeac6fdfd: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
