/root/repo/target/debug/deps/proptest-5274f1996325a7c1.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-5274f1996325a7c1.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
