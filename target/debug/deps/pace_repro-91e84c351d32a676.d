/root/repo/target/debug/deps/pace_repro-91e84c351d32a676.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpace_repro-91e84c351d32a676.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
