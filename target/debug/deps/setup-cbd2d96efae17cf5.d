/root/repo/target/debug/deps/setup-cbd2d96efae17cf5.d: crates/bench/tests/setup.rs Cargo.toml

/root/repo/target/debug/deps/libsetup-cbd2d96efae17cf5.rmeta: crates/bench/tests/setup.rs Cargo.toml

crates/bench/tests/setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
