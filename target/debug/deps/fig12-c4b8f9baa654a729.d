/root/repo/target/debug/deps/fig12-c4b8f9baa654a729.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-c4b8f9baa654a729.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
