/root/repo/target/debug/deps/table9-364b94c3c4cfd6eb.d: crates/bench/src/bin/table9.rs Cargo.toml

/root/repo/target/debug/deps/libtable9-364b94c3c4cfd6eb.rmeta: crates/bench/src/bin/table9.rs Cargo.toml

crates/bench/src/bin/table9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
