/root/repo/target/debug/deps/fig10-d94f38f82d6f779b.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-d94f38f82d6f779b.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
