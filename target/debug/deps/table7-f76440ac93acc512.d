/root/repo/target/debug/deps/table7-f76440ac93acc512.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-f76440ac93acc512: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
