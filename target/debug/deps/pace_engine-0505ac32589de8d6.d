/root/repo/target/debug/deps/pace_engine-0505ac32589de8d6.d: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs Cargo.toml

/root/repo/target/debug/deps/libpace_engine-0505ac32589de8d6.rmeta: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/count.rs:
crates/engine/src/estimator.rs:
crates/engine/src/exec.rs:
crates/engine/src/optimizer.rs:
crates/engine/src/traditional.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
