/root/repo/target/debug/deps/attack_e2e-535a008c2e83f265.d: crates/core/tests/attack_e2e.rs

/root/repo/target/debug/deps/attack_e2e-535a008c2e83f265: crates/core/tests/attack_e2e.rs

crates/core/tests/attack_e2e.rs:
