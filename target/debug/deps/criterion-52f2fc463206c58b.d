/root/repo/target/debug/deps/criterion-52f2fc463206c58b.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-52f2fc463206c58b: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
