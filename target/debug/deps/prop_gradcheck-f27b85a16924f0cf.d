/root/repo/target/debug/deps/prop_gradcheck-f27b85a16924f0cf.d: crates/tensor/tests/prop_gradcheck.rs

/root/repo/target/debug/deps/prop_gradcheck-f27b85a16924f0cf: crates/tensor/tests/prop_gradcheck.rs

crates/tensor/tests/prop_gradcheck.rs:
