/root/repo/target/debug/deps/debug_victims-e7c0bd99cadb0fc5.d: crates/bench/src/bin/debug_victims.rs

/root/repo/target/debug/deps/debug_victims-e7c0bd99cadb0fc5: crates/bench/src/bin/debug_victims.rs

crates/bench/src/bin/debug_victims.rs:
