/root/repo/target/debug/deps/table3-12867dc8cda7098a.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-12867dc8cda7098a.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
