/root/repo/target/debug/deps/fig11-0686d8c629ffc36b.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-0686d8c629ffc36b.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
