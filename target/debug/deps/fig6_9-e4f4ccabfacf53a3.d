/root/repo/target/debug/deps/fig6_9-e4f4ccabfacf53a3.d: crates/bench/src/bin/fig6_9.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_9-e4f4ccabfacf53a3.rmeta: crates/bench/src/bin/fig6_9.rs Cargo.toml

crates/bench/src/bin/fig6_9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
