/root/repo/target/debug/deps/fig6_9-891e698e3153bbec.d: crates/bench/src/bin/fig6_9.rs

/root/repo/target/debug/deps/fig6_9-891e698e3153bbec: crates/bench/src/bin/fig6_9.rs

crates/bench/src/bin/fig6_9.rs:
