/root/repo/target/debug/deps/fig14-6ffc88ffa0e03dce.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-6ffc88ffa0e03dce: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
