/root/repo/target/debug/deps/run_all-e3504654d93db0b8.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-e3504654d93db0b8: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
