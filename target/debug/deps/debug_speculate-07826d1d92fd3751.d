/root/repo/target/debug/deps/debug_speculate-07826d1d92fd3751.d: crates/bench/src/bin/debug_speculate.rs

/root/repo/target/debug/deps/debug_speculate-07826d1d92fd3751: crates/bench/src/bin/debug_speculate.rs

crates/bench/src/bin/debug_speculate.rs:
