/root/repo/target/debug/deps/models-6085638469dd4a64.d: crates/ce/tests/models.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-6085638469dd4a64.rmeta: crates/ce/tests/models.rs Cargo.toml

crates/ce/tests/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
