/root/repo/target/debug/deps/table5-effe56aa43038993.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-effe56aa43038993.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
