/root/repo/target/debug/deps/debug_latency-95780a5c8e95170b.d: crates/bench/src/bin/debug_latency.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_latency-95780a5c8e95170b.rmeta: crates/bench/src/bin/debug_latency.rs Cargo.toml

crates/bench/src/bin/debug_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
