/root/repo/target/debug/deps/criterion-139e34e1e765c0cc.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-139e34e1e765c0cc.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-139e34e1e765c0cc.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
