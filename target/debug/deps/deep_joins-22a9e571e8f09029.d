/root/repo/target/debug/deps/deep_joins-22a9e571e8f09029.d: crates/engine/tests/deep_joins.rs Cargo.toml

/root/repo/target/debug/deps/libdeep_joins-22a9e571e8f09029.rmeta: crates/engine/tests/deep_joins.rs Cargo.toml

crates/engine/tests/deep_joins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
