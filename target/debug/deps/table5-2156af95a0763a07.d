/root/repo/target/debug/deps/table5-2156af95a0763a07.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-2156af95a0763a07: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
