/root/repo/target/debug/deps/pace_workload-c3b0a4716cb6b37f.d: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs Cargo.toml

/root/repo/target/debug/deps/libpace_workload-c3b0a4716cb6b37f.rmeta: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/encode.rs:
crates/workload/src/gen.rs:
crates/workload/src/metrics.rs:
crates/workload/src/query.rs:
crates/workload/src/templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
