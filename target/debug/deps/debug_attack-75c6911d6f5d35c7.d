/root/repo/target/debug/deps/debug_attack-75c6911d6f5d35c7.d: crates/bench/src/bin/debug_attack.rs

/root/repo/target/debug/deps/debug_attack-75c6911d6f5d35c7: crates/bench/src/bin/debug_attack.rs

crates/bench/src/bin/debug_attack.rs:
