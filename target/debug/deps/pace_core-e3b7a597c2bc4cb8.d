/root/repo/target/debug/deps/pace_core-e3b7a597c2bc4cb8.d: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs Cargo.toml

/root/repo/target/debug/deps/libpace_core-e3b7a597c2bc4cb8.rmeta: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/advisor.rs:
crates/core/src/attack/mod.rs:
crates/core/src/attack/accelerated.rs:
crates/core/src/attack/baselines.rs:
crates/core/src/attack/basic.rs:
crates/core/src/budget.rs:
crates/core/src/defense.rs:
crates/core/src/detector.rs:
crates/core/src/generator.rs:
crates/core/src/knowledge.rs:
crates/core/src/pipeline.rs:
crates/core/src/surrogate.rs:
crates/core/src/victim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
