/root/repo/target/debug/deps/table6-68096c811ec200d9.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-68096c811ec200d9: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
