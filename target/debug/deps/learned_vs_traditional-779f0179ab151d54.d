/root/repo/target/debug/deps/learned_vs_traditional-779f0179ab151d54.d: crates/bench/src/bin/learned_vs_traditional.rs

/root/repo/target/debug/deps/learned_vs_traditional-779f0179ab151d54: crates/bench/src/bin/learned_vs_traditional.rs

crates/bench/src/bin/learned_vs_traditional.rs:
