/root/repo/target/debug/deps/pace_workload-6af09f9b17fd7964.d: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

/root/repo/target/debug/deps/pace_workload-6af09f9b17fd7964: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

crates/workload/src/lib.rs:
crates/workload/src/encode.rs:
crates/workload/src/gen.rs:
crates/workload/src/metrics.rs:
crates/workload/src/query.rs:
crates/workload/src/templates.rs:
