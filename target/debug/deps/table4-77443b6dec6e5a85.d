/root/repo/target/debug/deps/table4-77443b6dec6e5a85.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-77443b6dec6e5a85: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
