/root/repo/target/debug/deps/proptest-6f6c8db20104ff7d.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6f6c8db20104ff7d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6f6c8db20104ff7d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
