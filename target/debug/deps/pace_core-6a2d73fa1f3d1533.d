/root/repo/target/debug/deps/pace_core-6a2d73fa1f3d1533.d: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs

/root/repo/target/debug/deps/libpace_core-6a2d73fa1f3d1533.rlib: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs

/root/repo/target/debug/deps/libpace_core-6a2d73fa1f3d1533.rmeta: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs

crates/core/src/lib.rs:
crates/core/src/advisor.rs:
crates/core/src/attack/mod.rs:
crates/core/src/attack/accelerated.rs:
crates/core/src/attack/baselines.rs:
crates/core/src/attack/basic.rs:
crates/core/src/budget.rs:
crates/core/src/defense.rs:
crates/core/src/detector.rs:
crates/core/src/generator.rs:
crates/core/src/knowledge.rs:
crates/core/src/pipeline.rs:
crates/core/src/surrogate.rs:
crates/core/src/victim.rs:
