/root/repo/target/debug/deps/pace_workload-5500afb5fb4edaf8.d: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs Cargo.toml

/root/repo/target/debug/deps/libpace_workload-5500afb5fb4edaf8.rmeta: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/encode.rs:
crates/workload/src/gen.rs:
crates/workload/src/metrics.rs:
crates/workload/src/query.rs:
crates/workload/src/templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
