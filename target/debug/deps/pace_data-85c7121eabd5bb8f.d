/root/repo/target/debug/deps/pace_data-85c7121eabd5bb8f.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpace_data-85c7121eabd5bb8f.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/datasets.rs:
crates/data/src/distr.rs:
crates/data/src/schema.rs:
crates/data/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
