/root/repo/target/debug/deps/debug_victims-e8c9b658819c0dff.d: crates/bench/src/bin/debug_victims.rs

/root/repo/target/debug/deps/debug_victims-e8c9b658819c0dff: crates/bench/src/bin/debug_victims.rs

crates/bench/src/bin/debug_victims.rs:
