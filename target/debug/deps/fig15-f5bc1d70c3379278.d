/root/repo/target/debug/deps/fig15-f5bc1d70c3379278.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-f5bc1d70c3379278.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
