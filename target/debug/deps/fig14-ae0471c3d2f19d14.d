/root/repo/target/debug/deps/fig14-ae0471c3d2f19d14.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-ae0471c3d2f19d14.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
