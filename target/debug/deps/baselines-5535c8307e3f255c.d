/root/repo/target/debug/deps/baselines-5535c8307e3f255c.d: crates/core/tests/baselines.rs

/root/repo/target/debug/deps/baselines-5535c8307e3f255c: crates/core/tests/baselines.rs

crates/core/tests/baselines.rs:
