/root/repo/target/debug/deps/debug_attack-ac8fbbcef9ecba69.d: crates/bench/src/bin/debug_attack.rs

/root/repo/target/debug/deps/debug_attack-ac8fbbcef9ecba69: crates/bench/src/bin/debug_attack.rs

crates/bench/src/bin/debug_attack.rs:
