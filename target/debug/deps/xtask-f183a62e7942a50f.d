/root/repo/target/debug/deps/xtask-f183a62e7942a50f.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-f183a62e7942a50f.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
