/root/repo/target/debug/deps/baselines-5e5608823f5ed0cc.d: crates/core/tests/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-5e5608823f5ed0cc.rmeta: crates/core/tests/baselines.rs Cargo.toml

crates/core/tests/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
