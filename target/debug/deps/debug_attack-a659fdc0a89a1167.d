/root/repo/target/debug/deps/debug_attack-a659fdc0a89a1167.d: crates/bench/src/bin/debug_attack.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_attack-a659fdc0a89a1167.rmeta: crates/bench/src/bin/debug_attack.rs Cargo.toml

crates/bench/src/bin/debug_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
