/root/repo/target/debug/deps/clone_and_consistency-1ba890292e9f3403.d: crates/ce/tests/clone_and_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libclone_and_consistency-1ba890292e9f3403.rmeta: crates/ce/tests/clone_and_consistency.rs Cargo.toml

crates/ce/tests/clone_and_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
