/root/repo/target/debug/deps/pace_bench-d696b465482e355f.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs

/root/repo/target/debug/deps/libpace_bench-d696b465482e355f.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs

/root/repo/target/debug/deps/libpace_bench-d696b465482e355f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/accuracy.rs:
crates/bench/src/experiments/design_ablation.rs:
crates/bench/src/experiments/dynamics.rs:
crates/bench/src/experiments/e2e.rs:
crates/bench/src/experiments/surrogate_exp.rs:
crates/bench/src/experiments/traditional_exp.rs:
crates/bench/src/grid.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
