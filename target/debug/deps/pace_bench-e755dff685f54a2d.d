/root/repo/target/debug/deps/pace_bench-e755dff685f54a2d.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs Cargo.toml

/root/repo/target/debug/deps/libpace_bench-e755dff685f54a2d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/accuracy.rs crates/bench/src/experiments/design_ablation.rs crates/bench/src/experiments/dynamics.rs crates/bench/src/experiments/e2e.rs crates/bench/src/experiments/surrogate_exp.rs crates/bench/src/experiments/traditional_exp.rs crates/bench/src/grid.rs crates/bench/src/report.rs crates/bench/src/setup.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/accuracy.rs:
crates/bench/src/experiments/design_ablation.rs:
crates/bench/src/experiments/dynamics.rs:
crates/bench/src/experiments/e2e.rs:
crates/bench/src/experiments/surrogate_exp.rs:
crates/bench/src/experiments/traditional_exp.rs:
crates/bench/src/grid.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
