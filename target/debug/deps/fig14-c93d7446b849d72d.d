/root/repo/target/debug/deps/fig14-c93d7446b849d72d.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-c93d7446b849d72d.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
