/root/repo/target/debug/deps/fig12-0854c69fa12c5266.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-0854c69fa12c5266: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
