/root/repo/target/debug/deps/table3-c38f4d62ccea7c72.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-c38f4d62ccea7c72: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
