/root/repo/target/debug/deps/table4-f091f8100499946d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f091f8100499946d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
