/root/repo/target/debug/deps/table7-44fd1eefec034596.d: crates/bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-44fd1eefec034596.rmeta: crates/bench/src/bin/table7.rs Cargo.toml

crates/bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
