/root/repo/target/release/deps/pace_tensor-487e418718e4d601.d: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs

/root/repo/target/release/deps/libpace_tensor-487e418718e4d601.rlib: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs

/root/repo/target/release/deps/libpace_tensor-487e418718e4d601.rmeta: crates/tensor/src/lib.rs crates/tensor/src/analysis.rs crates/tensor/src/check.rs crates/tensor/src/grad.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/serialize.rs

crates/tensor/src/lib.rs:
crates/tensor/src/analysis.rs:
crates/tensor/src/check.rs:
crates/tensor/src/grad.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/nn.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/serialize.rs:
