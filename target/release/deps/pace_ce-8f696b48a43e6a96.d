/root/repo/target/release/deps/pace_ce-8f696b48a43e6a96.d: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

/root/repo/target/release/deps/libpace_ce-8f696b48a43e6a96.rlib: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

/root/repo/target/release/deps/libpace_ce-8f696b48a43e6a96.rmeta: crates/ce/src/lib.rs crates/ce/src/config.rs crates/ce/src/loss.rs crates/ce/src/model.rs

crates/ce/src/lib.rs:
crates/ce/src/config.rs:
crates/ce/src/loss.rs:
crates/ce/src/model.rs:
