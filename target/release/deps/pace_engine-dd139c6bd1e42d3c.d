/root/repo/target/release/deps/pace_engine-dd139c6bd1e42d3c.d: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

/root/repo/target/release/deps/libpace_engine-dd139c6bd1e42d3c.rlib: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

/root/repo/target/release/deps/libpace_engine-dd139c6bd1e42d3c.rmeta: crates/engine/src/lib.rs crates/engine/src/count.rs crates/engine/src/estimator.rs crates/engine/src/exec.rs crates/engine/src/optimizer.rs crates/engine/src/traditional.rs

crates/engine/src/lib.rs:
crates/engine/src/count.rs:
crates/engine/src/estimator.rs:
crates/engine/src/exec.rs:
crates/engine/src/optimizer.rs:
crates/engine/src/traditional.rs:
