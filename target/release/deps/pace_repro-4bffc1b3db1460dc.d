/root/repo/target/release/deps/pace_repro-4bffc1b3db1460dc.d: src/lib.rs

/root/repo/target/release/deps/libpace_repro-4bffc1b3db1460dc.rlib: src/lib.rs

/root/repo/target/release/deps/libpace_repro-4bffc1b3db1460dc.rmeta: src/lib.rs

src/lib.rs:
