/root/repo/target/release/deps/pace_data-bbbf3648efe6ee2b.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

/root/repo/target/release/deps/libpace_data-bbbf3648efe6ee2b.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

/root/repo/target/release/deps/libpace_data-bbbf3648efe6ee2b.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/datasets.rs crates/data/src/distr.rs crates/data/src/schema.rs crates/data/src/table.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/datasets.rs:
crates/data/src/distr.rs:
crates/data/src/schema.rs:
crates/data/src/table.rs:
