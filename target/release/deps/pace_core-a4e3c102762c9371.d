/root/repo/target/release/deps/pace_core-a4e3c102762c9371.d: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs

/root/repo/target/release/deps/libpace_core-a4e3c102762c9371.rlib: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs

/root/repo/target/release/deps/libpace_core-a4e3c102762c9371.rmeta: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/attack/mod.rs crates/core/src/attack/accelerated.rs crates/core/src/attack/baselines.rs crates/core/src/attack/basic.rs crates/core/src/budget.rs crates/core/src/defense.rs crates/core/src/detector.rs crates/core/src/generator.rs crates/core/src/knowledge.rs crates/core/src/pipeline.rs crates/core/src/surrogate.rs crates/core/src/victim.rs

crates/core/src/lib.rs:
crates/core/src/advisor.rs:
crates/core/src/attack/mod.rs:
crates/core/src/attack/accelerated.rs:
crates/core/src/attack/baselines.rs:
crates/core/src/attack/basic.rs:
crates/core/src/budget.rs:
crates/core/src/defense.rs:
crates/core/src/detector.rs:
crates/core/src/generator.rs:
crates/core/src/knowledge.rs:
crates/core/src/pipeline.rs:
crates/core/src/surrogate.rs:
crates/core/src/victim.rs:
