/root/repo/target/release/deps/pace_workload-e9cd1254c57b7b4b.d: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

/root/repo/target/release/deps/libpace_workload-e9cd1254c57b7b4b.rlib: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

/root/repo/target/release/deps/libpace_workload-e9cd1254c57b7b4b.rmeta: crates/workload/src/lib.rs crates/workload/src/encode.rs crates/workload/src/gen.rs crates/workload/src/metrics.rs crates/workload/src/query.rs crates/workload/src/templates.rs

crates/workload/src/lib.rs:
crates/workload/src/encode.rs:
crates/workload/src/gen.rs:
crates/workload/src/metrics.rs:
crates/workload/src/query.rs:
crates/workload/src/templates.rs:
