/root/repo/target/release/examples/quickstart-5fe11221cdf531d7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5fe11221cdf531d7: examples/quickstart.rs

examples/quickstart.rs:
