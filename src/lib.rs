//! Umbrella crate re-exporting the PACE reproduction workspace.
pub use pace_ce as ce;
pub use pace_core as attack;
pub use pace_data as data;
pub use pace_engine as engine;
pub use pace_tensor as tensor;
pub use pace_workload as workload;
